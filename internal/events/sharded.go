package events

import (
	"strconv"

	"hfetch/internal/telemetry"
)

// ShardedQueue partitions the monitor's event stream into independent
// rings hashed by file name, so concurrent producers (one per
// application "rank") and the daemon pool never serialize on a single
// mutex. Because a file always maps to the same shard and each shard is
// drained FIFO by a single worker, per-file event order — which segment
// scoring and sequencing-link learning require — is preserved without
// any cross-shard coordination.
//
// Capacity events carry no file name; they hash by tier name so each
// tier's capacity stream is also ordered.
//
// Overflow policy is per the underlying rings: blocking backpressure by
// default, or counted drops (inotify IN_Q_OVERFLOW) when drop is set.
type ShardedQueue struct {
	shards []*Queue
}

// NewSharded creates a queue with the given shard count (minimum 1) and
// total capacity split evenly across shards (minimum 1 per shard). If
// drop is true, Post discards events when the target shard is full.
func NewSharded(shards, capacity int, drop bool) *ShardedQueue {
	if shards < 1 {
		shards = 1
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	s := &ShardedQueue{shards: make([]*Queue, shards)}
	for i := range s.shards {
		s.shards[i] = newShardQueue(per, drop)
	}
	return s
}

// ShardOf returns the shard index an event's ordering key maps to under
// n shards. Exported so tests and the auditor's stripe accounting can
// reproduce the routing.
func ShardOf(ev Event, n int) int {
	key := ev.File
	if key == "" {
		key = ev.Tier
	}
	return int(HashOf(key) % uint64(n))
}

// HashOf is the routing hash (word-at-a-time FNV-1a with a final
// avalanche); the auditor stripes its epoch table with it too, so a
// shard worker's state accesses cluster on a stable stripe subset.
//
// It sits on the Post hot path — every produced event pays one call —
// so it folds eight bytes per multiply instead of classic FNV's one.
// The FNV multiply only propagates bits upward, which per-byte mixing
// hides but word-wise mixing does not: without the fmix finalizer the
// trailing bytes of each word could never reach the low bits that
// `% shards` selects, and names differing only in a trailing digit
// would all land on one shard.
func HashOf(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	i := 0
	for ; i+8 <= len(s); i += 8 {
		w := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		h = (h ^ w) * prime64
	}
	for ; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// NumShards returns the shard count.
func (s *ShardedQueue) NumShards() int { return len(s.shards) }

// Shard returns shard i's ring, for the worker that owns it.
func (s *ShardedQueue) Shard(i int) *Queue { return s.shards[i] }

// Post enqueues ev on its file's shard. It reports false when the event
// was dropped (drop policy and shard full) or the queue is closed.
func (s *ShardedQueue) Post(ev Event) bool {
	return s.shards[ShardOf(ev, len(s.shards))].postRef(&ev)
}

// Close closes every shard; pending events can still be drained.
func (s *ShardedQueue) Close() {
	for _, q := range s.shards {
		q.Close()
	}
}

// Len returns the total number of queued events across shards.
func (s *ShardedQueue) Len() int {
	n := 0
	for _, q := range s.shards {
		n += q.Len()
	}
	return n
}

// Stats returns the cumulative posted and dropped counts across shards.
func (s *ShardedQueue) Stats() (posted, dropped int64) {
	for _, q := range s.shards {
		p, d := q.Stats()
		posted += p
		dropped += d
	}
	return posted, dropped
}

// SetTelemetry attaches a registry: the queue exports the aggregate
// depth and posted/dropped totals under the same names the single queue
// uses, a per-shard depth gauge, and times sampled events' queue wait
// (see Queue.SetTelemetry). Call before traffic; nil is ignored.
func (s *ShardedQueue) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i, q := range s.shards {
		q.AttachTelemetry(reg)
		q := q
		reg.GaugeFunc("hfetch_event_shard_depth", "events queued in the shard",
			func() int64 { return int64(q.Len()) }, "shard", strconv.Itoa(i))
	}
	reg.GaugeFunc("hfetch_event_queue_depth", "events currently queued", func() int64 { return int64(s.Len()) })
	reg.CounterFunc("hfetch_events_posted_total", "events accepted into the queue", func() int64 {
		p, _ := s.Stats()
		return p
	})
	reg.CounterFunc("hfetch_events_dropped_total", "events dropped on overflow (IN_Q_OVERFLOW)", func() int64 {
		_, d := s.Stats()
		return d
	})
}
