package events

import "testing"

// FuzzHashShard checks the routing-hash contract for arbitrary keys:
// HashOf is deterministic, ShardOf stays in range and routes File and
// Tier keys identically, and shard choice is consistent with the
// auditor's 64-way epoch striping whenever the shard count divides 64
// (so a shard worker's epoch accesses cluster on a stable stripe
// subset — the property sharded.go's doc comment promises).
func FuzzHashShard(f *testing.F) {
	f.Add("", uint8(0))
	f.Add("a", uint8(3))
	f.Add("/scratch/run42/out.h5", uint8(7))
	f.Add("exactly8b", uint8(15))
	f.Add("file-with-a-long-name-0000000001", uint8(63))
	f.Fuzz(func(t *testing.T, key string, n uint8) {
		shards := int(n)%64 + 1
		if h1, h2 := HashOf(key), HashOf(key); h1 != h2 {
			t.Fatalf("HashOf(%q) not deterministic: %#x vs %#x", key, h1, h2)
		}
		s := ShardOf(Event{File: key}, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q, %d) = %d, out of range", key, shards, s)
		}
		if key != "" {
			// Capacity events carry no File and route by Tier; the same
			// key must land on the same shard either way.
			if ts := ShardOf(Event{Tier: key}, shards); ts != s {
				t.Fatalf("Tier routing for %q gave shard %d, File routing gave %d", key, ts, s)
			}
		}
		if 64%shards == 0 {
			stripe := int(HashOf(key) % 64)
			if stripe%shards != s {
				t.Fatalf("shard %d of %d misaligned with epoch stripe %d for %q",
					s, shards, stripe, key)
			}
		}
	})
}
