package events

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hfetch/internal/telemetry"
)

func TestShardedRoutingIsStable(t *testing.T) {
	s := NewSharded(8, 1024, false)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", s.NumShards())
	}
	for i := 0; i < 100; i++ {
		file := fmt.Sprintf("f%d", i)
		ev := Event{Op: OpRead, File: file}
		want := ShardOf(ev, 8)
		for j := 0; j < 5; j++ {
			if got := ShardOf(ev, 8); got != want {
				t.Fatalf("ShardOf(%q) unstable: %d then %d", file, want, got)
			}
		}
	}
	// Capacity events route by tier.
	cap1 := Event{Op: OpCapacity, Tier: "ram"}
	if ShardOf(cap1, 8) != ShardOf(cap1, 8) {
		t.Fatal("capacity event routing unstable")
	}
}

func TestShardedSpreadsFiles(t *testing.T) {
	const shards = 8
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		seen[ShardOf(Event{File: fmt.Sprintf("dir/file-%d.dat", i)}, shards)] = true
	}
	if len(seen) != shards {
		t.Fatalf("256 files hit only %d of %d shards", len(seen), shards)
	}
}

func TestShardedPerFileFIFO(t *testing.T) {
	s := NewSharded(4, 4096, false)
	const files, per = 16, 50
	for i := 0; i < per; i++ {
		for f := 0; f < files; f++ {
			s.Post(Event{Op: OpRead, File: fmt.Sprintf("f%d", f), Offset: int64(i)})
		}
	}
	if got := s.Len(); got != files*per {
		t.Fatalf("Len = %d, want %d", got, files*per)
	}
	// Drain every shard on one goroutine each; per-file offsets must be
	// strictly increasing within a shard.
	var wg sync.WaitGroup
	for i := 0; i < s.NumShards(); i++ {
		wg.Add(1)
		go func(q *Queue) {
			defer wg.Done()
			last := make(map[string]int64)
			buf := make([]Event, 8)
			for {
				n, ok := q.TakeBatch(buf)
				if !ok {
					return
				}
				for _, ev := range buf[:n] {
					if prev, seen := last[ev.File]; seen && ev.Offset <= prev {
						t.Errorf("file %s: offset %d after %d", ev.File, ev.Offset, prev)
					}
					last[ev.File] = ev.Offset
				}
			}
		}(s.Shard(i))
	}
	s.Close()
	wg.Wait()
}

func TestShardedDropPolicy(t *testing.T) {
	s := NewSharded(2, 2, true) // 1 slot per shard
	accepted := 0
	for i := 0; i < 20; i++ {
		if s.Post(Event{Op: OpRead, File: fmt.Sprintf("f%d", i)}) {
			accepted++
		}
	}
	posted, dropped := s.Stats()
	if posted != int64(accepted) {
		t.Fatalf("posted = %d, accepted = %d", posted, accepted)
	}
	if dropped != int64(20-accepted) {
		t.Fatalf("dropped = %d, want %d", dropped, 20-accepted)
	}
	if dropped == 0 {
		t.Fatal("expected overflow drops with 1-slot shards")
	}
}

// metricValue finds the unlabeled series of a family in a snapshot.
func metricValue(t *testing.T, snap telemetry.Snapshot, name string) int64 {
	t.Helper()
	for _, m := range snap.Metrics {
		if m.Name == name && m.Labels == "" {
			return m.Value
		}
	}
	t.Fatalf("metric %s not found in snapshot", name)
	return 0
}

func TestShardedTelemetryAggregates(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetTimeSampling(1)
	s := NewSharded(4, 64, false)
	s.SetTelemetry(reg)
	for i := 0; i < 10; i++ {
		s.Post(Event{Op: OpRead, File: fmt.Sprintf("f%d", i)})
	}
	snap := reg.Snapshot()
	if got := metricValue(t, snap, "hfetch_events_posted_total"); got != 10 {
		t.Fatalf("posted counter = %d, want 10", got)
	}
	if got := metricValue(t, snap, "hfetch_event_queue_depth"); got != 10 {
		t.Fatalf("depth gauge = %d, want 10", got)
	}
	// Drain and confirm queue-wait spans land in the stage histogram.
	var wg sync.WaitGroup
	for i := 0; i < s.NumShards(); i++ {
		wg.Add(1)
		go func(q *Queue) {
			defer wg.Done()
			for {
				if _, ok := q.Take(); !ok {
					return
				}
			}
		}(s.Shard(i))
	}
	s.Close()
	wg.Wait()
	h := reg.StageHist(telemetry.StageQueueWait)
	if h.Count() == 0 {
		t.Fatal("no queue_wait observations after drain")
	}
}

func TestShardedBackpressureReleases(t *testing.T) {
	s := NewSharded(2, 2, false)
	done := make(chan struct{})
	go func() {
		// Far more posts than capacity; must complete once drained.
		for i := 0; i < 100; i++ {
			s.Post(Event{Op: OpRead, File: "hot", Offset: int64(i)})
		}
		close(done)
	}()
	got := 0
	q := s.Shard(ShardOf(Event{File: "hot"}, 2))
	for got < 100 {
		if _, ok := q.Take(); !ok {
			break
		}
		got++
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after drain")
	}
	if got != 100 {
		t.Fatalf("drained %d events, want 100", got)
	}
}
