// Package events emulates the system-generated event substrate HFetch
// builds on. The paper intercepts the Linux inotify API at the VFS layer
// and enriches the raw events (open/read/write/close + filename) with the
// read offset, request size and a timestamp. This repository cannot
// intercept real syscalls, so the emulated I/O layer (internal/pfs and
// the client agents) posts the same enriched events through a watch
// registry: events are only delivered for files that currently have a
// watch installed, mirroring inotify_add_watch/inotify_rm_watch.
//
// Delivered events land in the monitor's queue, which comes in two
// shapes: Queue, a single bounded MPMC ring (the paper's literal
// "event queue"), and ShardedQueue, which partitions the stream into
// per-file-hashed rings so producers stop serializing on one mutex and
// per-file FIFO order survives a multi-worker drain. Both share the
// overflow policy (blocking backpressure or counted drops, mirroring
// inotify's IN_Q_OVERFLOW) and the queue-wait telemetry span.
package events

import (
	"fmt"
	"sync"
	"time"
)

// Op enumerates event types.
type Op uint8

// Event operations. Capacity events are tier-utilization notifications
// from the hardware monitor's per-tier probes and bypass file watches.
const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpClose
	OpCapacity
)

var opNames = [...]string{"open", "read", "write", "close", "capacity"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Via identifies the producer of an event: the in-process client agent
// (the default, zero value), the HTTP gateway's request path, or a
// synthetic readahead hint emitted by the gateway's sequential-stream
// detector. Hints are scored like real reads — a detected stream *is*
// the paper's sequencing signal — but carry the tag so consumers and
// tests can tell externally-driven traffic from agent traffic.
type Via uint8

// Event producers.
const (
	ViaAgent Via = iota
	ViaGateway
	ViaHint
)

var viaNames = [...]string{"agent", "gateway", "hint"}

func (v Via) String() string {
	if int(v) < len(viaNames) {
		return viaNames[v]
	}
	return fmt.Sprintf("via(%d)", uint8(v))
}

// Event is one enriched file-system event.
type Event struct {
	Op     Op
	File   string
	Offset int64
	Length int64
	Time   time.Time
	// Via tags the producer: in-process agent (default), the HTTP
	// gateway, or a synthetic stream-detector readahead hint.
	Via Via
	// Tier names the tier that produced the event (capacity events) or
	// served the access, when known.
	Tier string
	// Free is the remaining capacity for OpCapacity events.
	Free int64
	// Trace is the lifecycle trace ID stamped at monitor ingestion
	// (0 = untraced). It rides the event through the auditor into the
	// placement update so a prefetch can be attributed to the access
	// that caused it.
	Trace uint64
	// Origin names the cluster node whose client issued (or will issue)
	// the access; empty means the local node. It gives placement its
	// "where" axis: score updates for a foreign origin are routed to that
	// node's engine so data is prefetched where it will be read.
	Origin string
}

// Registry implements the watch table: files gain a watch when the first
// reader opens them and lose it when the last reader closes them.
// Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	watches map[string]int
}

// NewRegistry returns an empty watch registry.
func NewRegistry() *Registry {
	return &Registry{watches: make(map[string]int)}
}

// AddWatch installs (or references) a watch on file and reports whether
// this call created it.
func (r *Registry) AddWatch(file string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watches[file]++
	return r.watches[file] == 1
}

// RemoveWatch dereferences the watch on file and reports whether this
// call removed the last reference.
func (r *Registry) RemoveWatch(file string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.watches[file]
	if !ok {
		return false
	}
	if n <= 1 {
		delete(r.watches, file)
		return true
	}
	r.watches[file] = n - 1
	return false
}

// Watched reports whether file currently has a watch installed.
func (r *Registry) Watched(file string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.watches[file] > 0
}

// Len returns the number of files with installed watches.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.watches)
}

// AddDirWatch installs a watch on a directory prefix: every file whose
// name starts with dir + "/" is considered watched (inotify's directory
// watches). Reports whether this call created the watch.
func (r *Registry) AddDirWatch(dir string) bool {
	return r.AddWatch(dirKey(dir))
}

// RemoveDirWatch dereferences a directory watch.
func (r *Registry) RemoveDirWatch(dir string) bool {
	return r.RemoveWatch(dirKey(dir))
}

// Covered reports whether file is watched directly or through a watched
// parent directory.
func (r *Registry) Covered(file string) bool {
	if r.Watched(file) {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := len(file) - 1; i > 0; i-- {
		if file[i] == '/' {
			if r.watches[dirKey(file[:i])] > 0 {
				return true
			}
		}
	}
	return false
}

// dirKey namespaces directory watches away from file watches.
func dirKey(dir string) string { return "\x00dir:" + dir }
