package devsim

import "time"

// Reference profiles mirroring the Ares testbed of the paper, scaled so
// experiments complete quickly. The absolute numbers are not meant to
// match the hardware; the *ordering* and rough ratios between tiers are
// what the reproduction relies on: RAM >> NVMe >> burst buffer >> PFS.
var (
	// RAMProfile models a local DRAM prefetching allocation.
	RAMProfile = Profile{Name: "ram", Latency: 200 * time.Nanosecond, BytesPerSec: 8e9, Channels: 8}
	// NVMeProfile models a node-local NVMe SSD.
	NVMeProfile = Profile{Name: "nvme", Latency: 30 * time.Microsecond, BytesPerSec: 2e9, Channels: 4}
	// BurstBufferProfile models a shared remote burst-buffer allocation
	// reached over the fabric (SSD + network hop).
	BurstBufferProfile = Profile{Name: "bb", Latency: 250 * time.Microsecond, BytesPerSec: 1e9, Channels: 4}
	// PFSProfile models a remote parallel file system; Channels stands in
	// for the storage servers sharing the load.
	PFSProfile = Profile{Name: "pfs", Latency: 3 * time.Millisecond, BytesPerSec: 400e6, Channels: 6}
)
