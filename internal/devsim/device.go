// Package devsim models the performance of storage and memory devices.
//
// The repository reproduces experiments that were originally run on real
// hardware (RAM, node-local NVMe, shared burst buffers, and a remote
// parallel file system). devsim substitutes those devices with performance
// models: every operation against a Device is charged a service time
// derived from the device's latency and bandwidth, and concurrent
// operations contend for the device's channels exactly as they would on
// real hardware.
//
// The model is a virtual-clock queue anchored to wall time. Each device
// channel keeps a "next free" timestamp; an operation picks the channel
// that frees up earliest, computes its completion time as
//
//	start = max(now, channelFree)
//	end   = start + latency + size/bandwidth
//
// and then sleeps until end. Because the channel's free time advances by
// the full service time even when the caller does not sleep (sub-scheduler
// granularity operations), queueing backlogs accumulate correctly: many
// cheap operations issued at once serialize into real elapsed time, just
// like on a saturated device.
package devsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes the raw performance characteristics of a device.
type Profile struct {
	// Name identifies the device in metrics and logs.
	Name string
	// Latency is the fixed per-operation service time.
	Latency time.Duration
	// BytesPerSec is the sustained bandwidth of one channel.
	BytesPerSec float64
	// Channels is the number of independent service channels
	// (e.g. NVMe queue pairs, PFS storage servers). Zero means one.
	Channels int
}

// Device is a shared, concurrency-safe performance model instance.
type Device struct {
	prof  Profile
	scale float64

	mu   sync.Mutex
	free []time.Time // next-free wall-clock time per channel

	ops       atomic.Int64
	bytes     atomic.Int64
	busyNanos atomic.Int64
}

// New creates a Device from a profile. The scale factor multiplies all
// modeled service times; scale < 1 speeds experiments up proportionally
// on every device so relative results are preserved.
func New(prof Profile, scale float64) *Device {
	if prof.Channels <= 0 {
		prof.Channels = 1
	}
	if scale <= 0 {
		scale = 1
	}
	return &Device{
		prof:  prof,
		scale: scale,
		free:  make([]time.Time, prof.Channels),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.prof.Name }

// Profile returns the device's performance profile.
func (d *Device) Profile() Profile { return d.prof }

// Cost returns the modeled service time of a single operation moving
// size bytes, after scaling. It does not account for queueing.
func (d *Device) Cost(size int64) time.Duration {
	c := float64(d.prof.Latency)
	if d.prof.BytesPerSec > 0 && size > 0 {
		c += float64(size) / d.prof.BytesPerSec * float64(time.Second)
	}
	return time.Duration(c * d.scale)
}

// Access charges one operation of size bytes against the device and
// blocks until its modeled completion time. It returns the service time
// (excluding queueing delay) that was charged.
func (d *Device) Access(size int64) time.Duration {
	cost := d.Cost(size)
	now := time.Now()

	d.mu.Lock()
	// Pick the channel that frees up earliest.
	best := 0
	for i := 1; i < len(d.free); i++ {
		if d.free[i].Before(d.free[best]) {
			best = i
		}
	}
	start := d.free[best]
	if start.Before(now) {
		start = now
	}
	end := start.Add(cost)
	d.free[best] = end
	d.mu.Unlock()

	d.ops.Add(1)
	d.bytes.Add(size)
	d.busyNanos.Add(int64(cost))

	if wait := time.Until(end); wait > 0 {
		time.Sleep(wait)
	}
	return cost
}

// Stats reports cumulative operation count, bytes moved and modeled busy
// time since the device was created.
func (d *Device) Stats() (ops, bytes int64, busy time.Duration) {
	return d.ops.Load(), d.bytes.Load(), time.Duration(d.busyNanos.Load())
}

// ResetStats zeroes the cumulative counters.
func (d *Device) ResetStats() {
	d.ops.Store(0)
	d.bytes.Store(0)
	d.busyNanos.Store(0)
}

func (d *Device) String() string {
	return fmt.Sprintf("devsim.Device(%s lat=%v bw=%.0fMB/s ch=%d)",
		d.prof.Name, d.prof.Latency, d.prof.BytesPerSec/1e6, d.prof.Channels)
}
