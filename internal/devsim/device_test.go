package devsim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCostLatencyOnly(t *testing.T) {
	d := New(Profile{Name: "x", Latency: time.Millisecond}, 1)
	if got := d.Cost(0); got != time.Millisecond {
		t.Fatalf("Cost(0) = %v, want 1ms", got)
	}
	// No bandwidth term configured: size must not change the cost.
	if got := d.Cost(1 << 20); got != time.Millisecond {
		t.Fatalf("Cost(1MB) = %v, want 1ms", got)
	}
}

func TestCostBandwidthTerm(t *testing.T) {
	d := New(Profile{Name: "x", Latency: 0, BytesPerSec: 1e6}, 1)
	if got := d.Cost(1e6); got != time.Second {
		t.Fatalf("Cost(1e6) = %v, want 1s", got)
	}
	if got := d.Cost(500e3); got != 500*time.Millisecond {
		t.Fatalf("Cost(500e3) = %v, want 500ms", got)
	}
}

func TestCostScale(t *testing.T) {
	d := New(Profile{Name: "x", Latency: time.Second}, 0.001)
	if got := d.Cost(0); got != time.Millisecond {
		t.Fatalf("scaled Cost(0) = %v, want 1ms", got)
	}
}

func TestCostDefaultsIgnoreNonPositiveScale(t *testing.T) {
	d := New(Profile{Name: "x", Latency: time.Millisecond}, -3)
	if got := d.Cost(0); got != time.Millisecond {
		t.Fatalf("Cost with invalid scale = %v, want 1ms", got)
	}
}

func TestAccessBlocksForCost(t *testing.T) {
	d := New(Profile{Name: "x", Latency: 20 * time.Millisecond}, 1)
	start := time.Now()
	d.Access(0)
	if el := time.Since(start); el < 18*time.Millisecond {
		t.Fatalf("Access returned after %v, want >= ~20ms", el)
	}
}

func TestAccessSerializesOnOneChannel(t *testing.T) {
	d := New(Profile{Name: "x", Latency: 10 * time.Millisecond, Channels: 1}, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(0)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 35*time.Millisecond {
		t.Fatalf("4 serialized ops finished in %v, want >= ~40ms", el)
	}
}

func TestAccessParallelChannels(t *testing.T) {
	d := New(Profile{Name: "x", Latency: 20 * time.Millisecond, Channels: 4}, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(0)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 60*time.Millisecond {
		t.Fatalf("4 parallel ops took %v, want well under 80ms serial time", el)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(Profile{Name: "x", Latency: time.Microsecond, BytesPerSec: 1e9}, 1)
	for i := 0; i < 10; i++ {
		d.Access(100)
	}
	ops, bytes, busy := d.Stats()
	if ops != 10 || bytes != 1000 {
		t.Fatalf("Stats = %d ops %d bytes, want 10 ops 1000 bytes", ops, bytes)
	}
	if busy <= 0 {
		t.Fatalf("busy = %v, want > 0", busy)
	}
	d.ResetStats()
	ops, bytes, busy = d.Stats()
	if ops != 0 || bytes != 0 || busy != 0 {
		t.Fatalf("after reset Stats = %d %d %v, want zeros", ops, bytes, busy)
	}
}

func TestCostMonotonicInSize(t *testing.T) {
	d := New(Profile{Name: "x", Latency: time.Microsecond, BytesPerSec: 1e8}, 1)
	f := func(a, b uint32) bool {
		sa, sb := int64(a%1e6), int64(b%1e6)
		if sa > sb {
			sa, sb = sb, sa
		}
		return d.Cost(sa) <= d.Cost(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultChannels(t *testing.T) {
	d := New(Profile{Name: "x"}, 1)
	if d.Profile().Channels != 1 {
		t.Fatalf("Channels = %d, want 1 default", d.Profile().Channels)
	}
}

func TestStringContainsName(t *testing.T) {
	d := New(Profile{Name: "mydev", Latency: time.Millisecond, BytesPerSec: 1e6}, 1)
	if s := d.String(); s == "" || !contains(s, "mydev") {
		t.Fatalf("String() = %q, want it to mention device name", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
