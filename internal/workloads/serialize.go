package workloads

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// jsonAccess is the stable on-disk form of an Access.
type jsonAccess struct {
	File    string `json:"file"`
	Off     int64  `json:"off"`
	Len     int64  `json:"len"`
	ThinkUS int64  `json:"think_us,omitempty"`
}

// jsonApp is the stable on-disk form of an App.
type jsonApp struct {
	Name  string         `json:"name"`
	Procs [][]jsonAccess `json:"procs"`
}

// Document is the serialized workload format: a named set of
// applications plus the files they need, so a saved workload is
// self-contained and replayable (cmd/hfdrive, external tools).
type Document struct {
	Name  string           `json:"name"`
	Files map[string]int64 `json:"files"`
	Apps  []jsonApp        `json:"apps"`
}

// Export converts apps (and their file manifest) into a Document.
func Export(name string, files map[string]int64, apps []App) Document {
	doc := Document{Name: name, Files: files}
	for _, a := range apps {
		ja := jsonApp{Name: a.Name}
		for _, p := range a.Procs {
			jp := make([]jsonAccess, len(p))
			for i, acc := range p {
				jp[i] = jsonAccess{
					File: acc.File, Off: acc.Off, Len: acc.Len,
					ThinkUS: int64(acc.Think / time.Microsecond),
				}
			}
			ja.Procs = append(ja.Procs, jp)
		}
		doc.Apps = append(doc.Apps, ja)
	}
	return doc
}

// Apps reconstructs the workload from a Document.
func (d Document) AppList() []App {
	var out []App
	for _, ja := range d.Apps {
		a := App{Name: ja.Name}
		for _, jp := range ja.Procs {
			p := make(Script, len(jp))
			for i, acc := range jp {
				p[i] = Access{
					File: acc.File, Off: acc.Off, Len: acc.Len,
					Think: time.Duration(acc.ThinkUS) * time.Microsecond,
				}
			}
			a.Procs = append(a.Procs, p)
		}
		out = append(out, a)
	}
	return out
}

// Validate checks that every access stays within its file's manifest.
func (d Document) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("workloads: document needs a name")
	}
	for _, a := range d.Apps {
		for pi, p := range a.Procs {
			for ai, acc := range p {
				size, ok := d.Files[acc.File]
				if !ok {
					return fmt.Errorf("workloads: %s proc %d access %d references unknown file %q",
						a.Name, pi, ai, acc.File)
				}
				if acc.Off < 0 || acc.Len <= 0 || acc.Off+acc.Len > size {
					return fmt.Errorf("workloads: %s proc %d access %d out of bounds: [%d,+%d) of %d",
						a.Name, pi, ai, acc.Off, acc.Len, size)
				}
			}
		}
	}
	return nil
}

// Write streams the document as indented JSON.
func (d Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// SaveFile writes the document to path.
func (d Document) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.Write(f)
}

// Read parses a document and validates it.
func Read(r io.Reader) (Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Document{}, fmt.Errorf("workloads: parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Document{}, err
	}
	return d, nil
}

// LoadFile reads a document from path.
func LoadFile(path string) (Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return Document{}, err
	}
	defer f.Close()
	return Read(f)
}
