package workloads

import (
	"testing"
	"time"
)

func TestPatternScriptSequential(t *testing.T) {
	s := PatternScript(Sequential, "f", 1000, 100, 500, time.Millisecond, 0)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	for i, a := range s {
		if a.Off != int64(i*100) || a.Len != 100 || a.File != "f" {
			t.Fatalf("access %d = %+v", i, a)
		}
	}
}

func TestPatternScriptSequentialWraps(t *testing.T) {
	s := PatternScript(Sequential, "f", 300, 100, 600, 0, 0)
	if len(s) != 6 {
		t.Fatalf("len = %d", len(s))
	}
	if s[3].Off != 0 {
		t.Fatalf("wrap offset = %d, want 0", s[3].Off)
	}
}

func TestPatternScriptStrided(t *testing.T) {
	s := PatternScript(Strided, "f", 10000, 100, 300, 0, 0)
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s[1].Off-s[0].Off != 400 {
		t.Fatalf("stride = %d, want 400", s[1].Off-s[0].Off)
	}
}

func TestPatternScriptRepetitiveStaysInWindow(t *testing.T) {
	s := PatternScript(Repetitive, "f", 100000, 100, 5000, 0, 0)
	for _, a := range s {
		if a.Off+a.Len > 800 {
			t.Fatalf("repetitive access outside window: %+v", a)
		}
	}
}

func TestPatternScriptIrregularSeeded(t *testing.T) {
	a := PatternScript(Irregular, "f", 10000, 100, 1000, 0, 42)
	b := PatternScript(Irregular, "f", 10000, 100, 1000, 0, 42)
	c := PatternScript(Irregular, "f", 10000, 100, 1000, 0, 43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
	for _, acc := range a {
		if acc.Off < 0 || acc.Off+acc.Len > 10000 {
			t.Fatalf("irregular access out of bounds: %+v", acc)
		}
	}
}

func TestPatternScriptDegenerate(t *testing.T) {
	if s := PatternScript(Sequential, "f", 0, 100, 100, 0, 0); s != nil {
		t.Fatal("zero file size must yield nil")
	}
	if s := PatternScript(Sequential, "f", 100, 0, 100, 0, 0); s != nil {
		t.Fatal("zero req must yield nil")
	}
	if s := PatternScript(Irregular, "f", 50, 100, 100, 0, 0); len(s) == 0 {
		t.Fatal("req > file must still produce one access at 0")
	}
}

func TestSharedFileGroups(t *testing.T) {
	apps := SharedFileGroups(4, 8, 1<<20, 4096, 64*4096, Sequential, 0)
	if len(apps) != 4 {
		t.Fatalf("apps = %d", len(apps))
	}
	for i, a := range apps {
		if len(a.Procs) != 8 {
			t.Fatalf("app %d procs = %d", i, len(a.Procs))
		}
		file := a.Procs[0][0].File
		for _, p := range a.Procs {
			for _, acc := range p {
				if acc.File != file {
					t.Fatal("all procs of one app must share the file")
				}
			}
		}
	}
	if len(Files(apps)) != 4 {
		t.Fatalf("distinct files = %d, want 4", len(Files(apps)))
	}
}

func TestTimeSteppedPassesAndThink(t *testing.T) {
	s := TimeStepped("f", 1000, 100, 3, time.Second)
	if len(s) != 30 {
		t.Fatalf("len = %d, want 30", len(s))
	}
	thinks := 0
	for _, a := range s {
		if a.Think > 0 {
			thinks++
		}
	}
	if thinks != 3 {
		t.Fatalf("think markers = %d, want 3 (one per pass)", thinks)
	}
}

func TestBurstClasses(t *testing.T) {
	unit := 10 * time.Millisecond
	w1 := Burst(W1DataIntensive, 4, 1<<20, 4096, 2, unit)
	w3 := Burst(W3ComputeIntensive, 4, 1<<20, 4096, 2, unit)
	if w1[0].Name != "w1" || w3[0].Name != "w3" {
		t.Fatal("names wrong")
	}
	think := func(apps []App) time.Duration {
		for _, p := range apps[0].Procs {
			for _, a := range p {
				if a.Think > 0 {
					return a.Think
				}
			}
		}
		return 0
	}
	if think(w3) <= think(w1) {
		t.Fatal("compute-intensive must think longer than data-intensive")
	}
}

func TestTotalBytes(t *testing.T) {
	apps := SharedFileGroups(2, 2, 1000, 100, 500, Sequential, 0)
	if got := TotalBytes(apps); got != 2*2*500 {
		t.Fatalf("TotalBytes = %d, want 2000", got)
	}
}

func TestMontageShape(t *testing.T) {
	cfg := MontageConfig{Procs: 4, ImageBytes: 1 << 16, Images: 4, Req: 4096, Steps: 16, Think: 0}
	apps := Montage(cfg)
	if len(apps) != 4 {
		t.Fatalf("phases = %d, want 4", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name] = true
		if len(a.Procs) != 4 {
			t.Fatalf("phase %s procs = %d", a.Name, len(a.Procs))
		}
	}
	if !names["mProject"] || !names["mDiffFit"] {
		t.Fatalf("phase names = %v", names)
	}
	files := MontageFiles(cfg)
	if len(files) != 4 {
		t.Fatalf("files = %d", len(files))
	}
	// Every referenced file must exist in the manifest.
	for _, f := range Files(apps) {
		if _, ok := files[f]; !ok {
			t.Fatalf("script references unknown file %q", f)
		}
	}
}

func TestWRFStrongScaling(t *testing.T) {
	mk := func(procs int) int64 {
		return TotalBytes(WRF(WRFConfig{
			Procs: procs, TotalBytes: 1 << 22, Req: 4096, Steps: 4, Domains: 4,
		}))
	}
	t8, t16 := mk(8), mk(16)
	// Strong scaling: total I/O roughly constant across scales (each of
	// the 6 passes covers the whole dataset once).
	ratio := float64(t16) / float64(t8)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("strong scaling violated: 8 procs %d bytes, 16 procs %d bytes", t8, t16)
	}
}

func TestWRFFilesCoverScripts(t *testing.T) {
	cfg := WRFConfig{Procs: 8, TotalBytes: 1 << 22, Req: 4096, Steps: 4, Domains: 4}
	files := WRFFiles(cfg)
	for _, f := range Files(WRF(cfg)) {
		size, ok := files[f]
		if !ok || size <= 0 {
			t.Fatalf("unknown or empty file %q", f)
		}
	}
	// Accesses stay in bounds.
	for _, app := range WRF(cfg) {
		for _, p := range app.Procs {
			for _, a := range p {
				if a.Off < 0 || a.Off+a.Len > files[a.File] {
					t.Fatalf("out-of-bounds access %+v (file size %d)", a, files[a.File])
				}
			}
		}
	}
}
