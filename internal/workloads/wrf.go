package workloads

import (
	"fmt"
	"time"
)

// WRFConfig scales the WRF workflow emulation (Figure 6b).
type WRFConfig struct {
	// Procs is the number of processes (strong scaling divides the same
	// total data across them).
	Procs int
	// TotalBytes is the total input data across all scales.
	TotalBytes int64
	// Req is the request size.
	Req int64
	// Steps is the number of simulation time steps (paper: 4).
	Steps int
	// Think is the model computation per step.
	Think time.Duration
	// Domains is the number of input domain files.
	Domains int
}

// WRF emulates the Weather Research and Forecasting workflow: an
// iterative multi-application pipeline with three distinct phases.
//
// Pre-processing (WPS: geogrid/ungrib/metgrid) reads the static domain
// inputs sequentially. The main model (wrf.exe) iterates: every
// simulation time step re-reads boundary/analysis data — observed and
// simulated data are analyzed many times until the model converges. The
// post-processing/visualization application reads the model's domain
// data once more to render it. Strong scaling: the same total data is
// divided across more processes.
func WRF(cfg WRFConfig) []App {
	if cfg.Domains <= 0 {
		cfg.Domains = 4
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 4
	}
	perProc := cfg.TotalBytes / int64(cfg.Procs)
	if perProc < cfg.Req {
		perProc = cfg.Req
	}
	domain := func(p int) string { return fmt.Sprintf("wrf/domain-%d", p%cfg.Domains) }
	domainSize := cfg.TotalBytes / int64(cfg.Domains)

	pre := App{Name: "wps"}
	model := App{Name: "wrf"}
	post := App{Name: "post"}

	for p := 0; p < cfg.Procs; p++ {
		file := domain(p)
		// Each process owns a slice of its domain file.
		sliceOff := (int64(p/cfg.Domains) * perProc) % maxInt64(domainSize-perProc, 1)

		// Pre-processing: one sequential pass over the slice.
		var s1 Script
		for off := int64(0); off+cfg.Req <= perProc; off += cfg.Req {
			s1 = append(s1, Access{File: file, Off: sliceOff + off, Len: cfg.Req, Think: 0})
		}
		pre.Procs = append(pre.Procs, s1)

		// Main model: Steps iterations re-reading the slice with
		// computation between iterations.
		var s2 Script
		for st := 0; st < cfg.Steps; st++ {
			first := true
			for off := int64(0); off+cfg.Req <= perProc; off += cfg.Req {
				a := Access{File: file, Off: sliceOff + off, Len: cfg.Req}
				if first {
					a.Think = cfg.Think
					first = false
				}
				s2 = append(s2, a)
			}
		}
		model.Procs = append(model.Procs, s2)

		// Post-processing/visualization: a final pass.
		var s3 Script
		for off := int64(0); off+cfg.Req <= perProc; off += cfg.Req {
			s3 = append(s3, Access{File: file, Off: sliceOff + off, Len: cfg.Req, Think: 0})
		}
		post.Procs = append(post.Procs, s3)
	}
	return []App{pre, model, post}
}

// WRFFiles returns the domain files the workflow needs, with sizes.
func WRFFiles(cfg WRFConfig) map[string]int64 {
	if cfg.Domains <= 0 {
		cfg.Domains = 4
	}
	out := make(map[string]int64, cfg.Domains)
	for i := 0; i < cfg.Domains; i++ {
		out[fmt.Sprintf("wrf/domain-%d", i)] = cfg.TotalBytes / int64(cfg.Domains)
	}
	return out
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
