// Package workloads generates the synthetic and application-derived I/O
// workloads of the paper's evaluation: the four canonical access
// patterns (sequential, strided, repetitive, irregular), the
// compute/I/O-burst workloads w1–w3 of Figure 3(b), the event storm of
// Figure 3(a), and phase-accurate emulations of the Montage and WRF
// scientific workflows of Figure 6.
//
// A workload is a set of applications, each a set of per-process access
// scripts. Scripts carry think time (compute) between accesses, which is
// what gives prefetchers the window to overlap data movement with
// computation.
package workloads

import (
	"fmt"
	"math/rand"
	"time"
)

// Access is one read request preceded by Think of computation.
type Access struct {
	File  string
	Off   int64
	Len   int64
	Think time.Duration
}

// Script is one process's access sequence.
type Script []Access

// App is one application: a named group of processes.
type App struct {
	Name  string
	Procs []Script
}

// TotalBytes sums the read sizes across all processes of all apps.
func TotalBytes(apps []App) int64 {
	var t int64
	for _, a := range apps {
		for _, p := range a.Procs {
			for _, acc := range p {
				t += acc.Len
			}
		}
	}
	return t
}

// Files returns the distinct files referenced by the apps.
func Files(apps []App) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range apps {
		for _, p := range a.Procs {
			for _, acc := range p {
				if !seen[acc.File] {
					seen[acc.File] = true
					out = append(out, acc.File)
				}
			}
		}
	}
	return out
}

// ---- canonical patterns (Figure 5) ----

// Pattern names the four canonical access patterns.
type Pattern string

// The four patterns evaluated in Figure 5.
const (
	Sequential Pattern = "sequential"
	Strided    Pattern = "strided"
	Repetitive Pattern = "repetitive"
	Irregular  Pattern = "irregular"
)

// Patterns lists all four in paper order.
func Patterns() []Pattern {
	return []Pattern{Sequential, Strided, Repetitive, Irregular}
}

// PatternScript builds one process's script over file of fileSize,
// reading total bytes in req-sized requests with the given pattern and
// think time. seed de-correlates irregular processes.
func PatternScript(p Pattern, file string, fileSize, req, total int64, think time.Duration, seed int64) Script {
	if req <= 0 || total <= 0 || fileSize <= 0 {
		return nil
	}
	n := total / req
	if n == 0 {
		n = 1
	}
	s := make(Script, 0, n)
	rng := rand.New(rand.NewSource(seed))
	switch p {
	case Sequential:
		off := int64(0)
		for i := int64(0); i < n; i++ {
			if off+req > fileSize {
				off = 0
			}
			s = append(s, Access{File: file, Off: off, Len: req, Think: think})
			off += req
		}
	case Strided:
		stride := 4 * req
		off := int64(0)
		for i := int64(0); i < n; i++ {
			if off+req > fileSize {
				off = (off + req) % stride // shift phase each sweep
			}
			s = append(s, Access{File: file, Off: off, Len: req, Think: think})
			off += stride
		}
	case Repetitive:
		// A window is swept repeatedly (model-convergence loops).
		window := 8 * req
		if window > fileSize {
			window = fileSize
		}
		off := int64(0)
		for i := int64(0); i < n; i++ {
			if off+req > window {
				off = 0
			}
			s = append(s, Access{File: file, Off: off, Len: req, Think: think})
			off += req
		}
	case Irregular:
		maxOff := fileSize - req
		if maxOff < 0 {
			maxOff = 0
		}
		for i := int64(0); i < n; i++ {
			off := rng.Int63n(maxOff + 1)
			s = append(s, Access{File: file, Off: off, Len: req, Think: think})
		}
	}
	return s
}

// ---- shared-file process groups (Figures 4a/4b) ----

// SharedFileGroups builds nApps applications of procsPerApp processes;
// every process of app i reads the file "files/app<i>" of fileSize
// bytes with the given pattern. This is the WORM, multi-consumer shape
// scientific workflows exhibit: many ranks processing the same inputs.
func SharedFileGroups(nApps, procsPerApp int, fileSize, req, totalPerProc int64,
	pattern Pattern, think time.Duration) []App {
	apps := make([]App, nApps)
	for i := range apps {
		file := fmt.Sprintf("files/app%d", i)
		apps[i].Name = fmt.Sprintf("app%d", i)
		for p := 0; p < procsPerApp; p++ {
			apps[i].Procs = append(apps[i].Procs,
				PatternScript(pattern, file, fileSize, req, totalPerProc, think, int64(i*1000+p)))
		}
	}
	return apps
}

// TimeStepped builds a script that makes steps passes over [0, span) of
// file in req-sized sequential reads, thinking stepThink before each
// pass (the iterative time-step loops of Figures 4a and 6).
func TimeStepped(file string, span, req int64, steps int, stepThink time.Duration) Script {
	return TimeSteppedCompute(file, span, req, steps, stepThink, 0)
}

// TimeSteppedCompute is TimeStepped with an additional per-access
// compute time: the processing each read's data receives before the
// next read is issued. This is the computation window prefetchers
// overlap data movement with.
func TimeSteppedCompute(file string, span, req int64, steps int, stepThink, accessThink time.Duration) Script {
	var s Script
	for st := 0; st < steps; st++ {
		first := true
		for off := int64(0); off+req <= span; off += req {
			a := Access{File: file, Off: off, Len: req, Think: accessThink}
			if first {
				a.Think += stepThink
				first = false
			}
			s = append(s, a)
		}
	}
	return s
}

// ---- Figure 3(b) burst workloads ----

// BurstClass selects the compute/I/O balance of a burst workload.
type BurstClass int

// The three Figure 3(b) workloads.
const (
	W1DataIntensive BurstClass = iota
	W2Balanced
	W3ComputeIntensive
)

func (c BurstClass) String() string {
	switch c {
	case W1DataIntensive:
		return "w1"
	case W2Balanced:
		return "w2"
	default:
		return "w3"
	}
}

// Burst builds per-process scripts alternating computation with I/O
// bursts: bursts passes over the process's file in req-sized reads, with
// think time between bursts set by the class (w1 short, w2 medium, w3
// long).
func Burst(class BurstClass, procs int, fileSize, req int64, bursts int, unit time.Duration) []App {
	var think time.Duration
	switch class {
	case W1DataIntensive:
		think = unit / 4
	case W2Balanced:
		think = unit
	case W3ComputeIntensive:
		think = 4 * unit
	}
	app := App{Name: class.String()}
	for p := 0; p < procs; p++ {
		file := fmt.Sprintf("burst/%s-%d", class, p%4) // 4 shared files
		app.Procs = append(app.Procs, TimeStepped(file, fileSize, req, bursts, think))
	}
	return []App{app}
}
