package workloads

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleDoc() Document {
	apps := SharedFileGroups(2, 2, 1000, 100, 300, Sequential, 5*time.Millisecond)
	files := map[string]int64{}
	for _, f := range Files(apps) {
		files[f] = 1000
	}
	return Export("sample", files, apps)
}

func TestExportRoundTrip(t *testing.T) {
	doc := sampleDoc()
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	apps := got.AppList()
	if len(apps) != 2 || len(apps[0].Procs) != 2 {
		t.Fatalf("apps = %+v", apps)
	}
	orig := sampleDoc().AppList()
	for i := range apps {
		for j := range apps[i].Procs {
			for k := range apps[i].Procs[j] {
				if apps[i].Procs[j][k] != orig[i].Procs[j][k] {
					t.Fatalf("access mismatch at %d/%d/%d", i, j, k)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.json")
	if err := sampleDoc().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sample" || len(got.Files) != 2 {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestValidateCatches(t *testing.T) {
	doc := sampleDoc()
	doc.Name = ""
	if err := doc.Validate(); err == nil {
		t.Fatal("missing name must fail")
	}

	doc = sampleDoc()
	doc.Apps[0].Procs[0][0].File = "ghost"
	if err := doc.Validate(); err == nil || !strings.Contains(err.Error(), "unknown file") {
		t.Fatalf("unknown file err = %v", err)
	}

	doc = sampleDoc()
	doc.Apps[0].Procs[0][0].Off = 999
	if err := doc.Validate(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("oob err = %v", err)
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON must fail")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/wl.json"); err == nil {
		t.Fatal("missing file must fail")
	}
}
