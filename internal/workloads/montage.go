package workloads

import (
	"fmt"
	"math/rand"
	"time"
)

// MontageConfig scales the Montage workflow emulation (Figure 6a).
type MontageConfig struct {
	// Procs is the number of MPI processes across all phases.
	Procs int
	// ImageBytes is the size of one FITS image file.
	ImageBytes int64
	// Images is the number of input images.
	Images int
	// Req is the request size.
	Req int64
	// Steps is the number of time steps per phase (paper: 16 total).
	Steps int
	// Think is the computation time per step.
	Think time.Duration
}

// Montage emulates the Montage astronomical image mosaic workflow: an
// I/O-intensive, iterative multi-application pipeline.
//
// Phase 1 (mProject): FITS images are read sequentially by multiple
// processes. Phase 2 (re-projection): a subset of images is read by
// multiple processes, multiple times, in different time frames. Phase 3
// (mDiff/mFit): diffs between projected images are computed until the
// model converges — a random but repetitive read pattern. Phase 4
// (mBackground/mAdd): a sequential correction pass over the overlaid
// images. Every phase reads data the previous phase touched, which is
// exactly the cross-application reuse a data-centric prefetcher exploits.
func Montage(cfg MontageConfig) []App {
	if cfg.Steps < 4 {
		cfg.Steps = 4
	}
	perPhase := cfg.Steps / 4
	img := func(i int) string { return fmt.Sprintf("montage/fits-%d", i%cfg.Images) }
	rng := rand.New(rand.NewSource(7))

	project := App{Name: "mProject"}
	reproject := App{Name: "mReproject"}
	diff := App{Name: "mDiffFit"}
	background := App{Name: "mBackground"}

	for p := 0; p < cfg.Procs; p++ {
		// Phase 1: sequential read of this process's images.
		var s1 Script
		for st := 0; st < perPhase; st++ {
			s1 = append(s1, TimeStepped(img(p+st), cfg.ImageBytes, cfg.Req, 1, cfg.Think)...)
		}
		project.Procs = append(project.Procs, s1)

		// Phase 2: the same subset of images read repeatedly in
		// different time frames by many processes.
		var s2 Script
		for st := 0; st < perPhase; st++ {
			s2 = append(s2, TimeStepped(img(st), cfg.ImageBytes, cfg.Req, 1, cfg.Think)...)
		}
		reproject.Procs = append(reproject.Procs, s2)

		// Phase 3: random-but-repetitive diffs until convergence.
		var s3 Script
		for st := 0; st < perPhase; st++ {
			pick := rng.Intn(cfg.Images)
			s3 = append(s3, PatternScript(Repetitive, img(pick), cfg.ImageBytes,
				cfg.Req, cfg.ImageBytes/2, cfg.Think, int64(p*31+st))...)
		}
		diff.Procs = append(diff.Procs, s3)

		// Phase 4: sequential correction pass.
		var s4 Script
		for st := 0; st < perPhase; st++ {
			s4 = append(s4, TimeStepped(img(p+st), cfg.ImageBytes, cfg.Req, 1, cfg.Think)...)
		}
		background.Procs = append(background.Procs, s4)
	}
	return []App{project, reproject, diff, background}
}

// MontageFiles returns the input files the workflow needs, with sizes.
func MontageFiles(cfg MontageConfig) map[string]int64 {
	out := make(map[string]int64, cfg.Images)
	for i := 0; i < cfg.Images; i++ {
		out[fmt.Sprintf("montage/fits-%d", i)] = cfg.ImageBytes
	}
	return out
}
