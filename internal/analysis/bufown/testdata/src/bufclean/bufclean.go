// Package bufclean is the bufown negative fixture: disciplined
// acquisition/release pairing in every supported shape.
package bufclean

import "errors"

type Buf struct{ data []byte }

func (b *Buf) Release()      {}
func (b *Buf) Bytes() []byte { return b.data }
func (b *Buf) Len() int      { return len(b.data) }

type Store struct{ m map[int]*Buf }

func NewBuf(payload []byte) *Buf { return &Buf{data: payload} }

func (s *Store) View(id int) (*Buf, bool) {
	b, ok := s.m[id]
	return b, ok
}

func (s *Store) TakeBuf(id int) (*Buf, error) {
	b, ok := s.m[id]
	if !ok {
		return nil, errMissing
	}
	delete(s.m, id)
	return b, nil
}

func (s *Store) PutBuf(id int, b *Buf) error {
	if s.m == nil {
		return errMissing
	}
	s.m[id] = b
	return nil
}

var errMissing = errors.New("missing")

// read releases on both the empty and the full path.
func read(s *Store, id int) []byte {
	b, resident := s.View(id)
	if !resident {
		return nil
	}
	if b.Len() == 0 {
		b.Release()
		return nil
	}
	out := append([]byte(nil), b.Bytes()...)
	b.Release()
	return out
}

// readDeferred uses the defer idiom.
func readDeferred(s *Store, id int) int {
	b, resident := s.View(id)
	if !resident {
		return 0
	}
	defer b.Release()
	return b.Len()
}

// transfer moves a buffer between stores with the snap-back release.
func transfer(src, dst *Store, id int) error {
	b, err := src.TakeBuf(id)
	if err != nil {
		return err
	}
	if perr := dst.PutBuf(id, b); perr != nil {
		b.Release()
		return perr
	}
	return nil
}

// produce transfers ownership to the caller.
func produce(n int) *Buf {
	return NewBuf(make([]byte, n))
}

// install hands a fresh buffer straight to the store, releasing only
// when the store refuses it.
func install(s *Store, id, n int) error {
	b := NewBuf(make([]byte, n))
	if err := s.PutBuf(id, b); err != nil {
		b.Release()
		return err
	}
	return nil
}

// sweep pairs acquisition and release inside each loop iteration.
func sweep(s *Store, ids []int) int {
	total := 0
	for _, id := range ids {
		b, resident := s.View(id)
		if !resident {
			continue
		}
		total += b.Len()
		b.Release()
	}
	return total
}
