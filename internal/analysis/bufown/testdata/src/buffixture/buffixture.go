// Package buffixture exercises the bufown analyzer: every acquired
// buffer or pinned view must reach a release, store handoff, or
// ownership transfer on every control-flow path.
package buffixture

import "errors"

type Buf struct{ data []byte }

func (b *Buf) Release()      {}
func (b *Buf) Bytes() []byte { return b.data }
func (b *Buf) Len() int      { return len(b.data) }

type Store struct{ m map[int]*Buf }

func NewBuf(payload []byte) *Buf { return &Buf{data: payload} }

func (s *Store) View(id int) (*Buf, bool) {
	b, ok := s.m[id]
	return b, ok
}

func (s *Store) TakeBuf(id int) (*Buf, error) {
	b, ok := s.m[id]
	if !ok {
		return nil, ErrMissing
	}
	delete(s.m, id)
	return b, nil
}

func (s *Store) PutBuf(id int, b *Buf) error {
	if s.m == nil {
		return ErrMissing
	}
	s.m[id] = b
	return nil
}

var ErrMissing = errors.New("missing")

// --- leaked view on an error path ------------------------------------

func leakOnError(s *Store, id int) ([]byte, error) {
	b, resident := s.View(id) // want `pinned view \(Store\.View\) is not released on every path out of leakOnError`
	if !resident {
		return nil, ErrMissing
	}
	if b.Len() == 0 {
		return nil, ErrMissing // leaks the pin
	}
	out := append([]byte(nil), b.Bytes()...)
	b.Release()
	return out, nil
}

func leakPlain(n int) {
	b := NewBuf(make([]byte, n)) // want `buffer \(NewBuf\) is not released on every path out of leakPlain`
	_ = b
}

// --- conditional release (failed-handoff chain) ----------------------

// putBack is the disciplined conditional chain: the store owns the
// buffer after a successful PutBuf; on failure ownership snaps back and
// the caller must release.
func putBack(src, dst *Store, id int) error {
	b, err := src.TakeBuf(id)
	if err != nil {
		return err
	}
	if perr := dst.PutBuf(id, b); perr != nil {
		b.Release()
		return perr
	}
	return nil
}

// putBackLeak forgets the release on the failed-handoff path.
func putBackLeak(src, dst *Store, id int) error {
	b, err := src.TakeBuf(id) // want `taken buffer \(Store\.TakeBuf\) is not released on every path out of putBackLeak`
	if err != nil {
		return err
	}
	if perr := dst.PutBuf(id, b); perr != nil {
		return perr
	}
	return nil
}

// --- defer release ----------------------------------------------------

func deferRelease(s *Store, id int) int {
	b, resident := s.View(id)
	if !resident {
		return 0
	}
	defer b.Release()
	return b.Len()
}

// deferOnSomePaths registers the defer only in one branch: the other
// branch still leaks, and the shared exit chain must not excuse it.
func deferOnSomePaths(s *Store, id int, keep bool) int {
	b, resident := s.View(id) // want `pinned view \(Store\.View\) is not released on every path out of deferOnSomePaths`
	if !resident {
		return 0
	}
	if keep {
		defer b.Release()
	}
	return b.Len()
}

// --- ownership transfer by return ------------------------------------

func open(s *Store, id int) (*Buf, bool) {
	b, resident := s.View(id)
	if !resident {
		return nil, false
	}
	return b, true
}

// --- use after release ------------------------------------------------

func useAfterRelease(s *Store, id int) int {
	b, resident := s.View(id)
	if !resident {
		return 0
	}
	b.Release()
	return b.Len() // want `pinned view \(Store\.View\) used after release`
}

func aliasAfterRelease(s *Store, id int) []byte {
	b, resident := s.View(id)
	if !resident {
		return nil
	}
	data := b.Bytes()
	b.Release()
	return data // want `slice aliasing pinned view \(Store\.View\) used after the buffer was released`
}

// --- loops and merges stay precise -----------------------------------

func loopViews(s *Store, ids []int) int {
	total := 0
	for _, id := range ids {
		b, resident := s.View(id)
		if !resident {
			continue
		}
		total += b.Len()
		b.Release()
	}
	return total
}

// --- deliberate handoff, waived --------------------------------------

// pinForever holds the pin until process exit by design.
func pinForever(s *Store, id int) {
	//lint:allow bufown pinned deliberately until process exit
	b, resident := s.View(id)
	if resident {
		b.Len()
	}
}
