// Package bufown enforces buffer ownership: every acquisition of a
// refcounted buffer or pinned view (tiers.NewBuf, Store.View,
// Store.TakeBuf, server.OpenRangeView — the manifest is configurable)
// must reach a balancing release (Release / Close), a store handoff
// (Store.PutBuf), or an explicit ownership transfer (returning the
// value, storing it into a structure, passing it to another function)
// on **every** control-flow path out of the function.
//
// The check is a forward dataflow over the framework CFG. The fact maps
// each acquired local to a small state machine:
//
//   - may-owned: at least one path reaches here still holding the
//     obligation. A may-owned object at function exit is a leak,
//     reported at the acquisition.
//   - conditional: acquisitions like `b, resident := st.View(id)` or
//     `b, err := st.TakeBuf(id)` own only when the condition holds;
//     branch-edge refinement (Flow.Refine) resolves the state on the
//     edges of `if resident` / `if err != nil`, so the non-owning path
//     carries no obligation. A conditional handoff — `err :=
//     dst.PutBuf(id, b)` — flips the polarity: the caller owns again
//     only when the error is non-nil.
//   - released: a must-release happened; any later use of the object
//     (or of a slice obtained from its Bytes-style alias methods) is a
//     use-after-release.
//
// `defer b.Release()` discharges the obligation at registration (the
// exit chain runs it on every path), without marking the object
// released for use-after-release purposes until the chain executes.
// Escapes — returns, field stores, channel sends, closure captures,
// calls that take the object — conservatively end tracking: ownership
// moved somewhere this intra-procedural pass cannot see.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// CondKind says which result value gates ownership of an acquisition.
type CondKind int

const (
	CondNone      CondKind = iota // unconditional
	CondBool                      // owned iff the bool result is true
	CondErrNil                    // owned iff the error result is nil
	condErrNonNil                 // internal: owned iff non-nil (failed handoff)
)

// Acquire describes one ownership-creating call.
type Acquire struct {
	// Callee is "pkgpath.Func" or "pkgpath.Type.Method".
	Callee string
	// Result is the index of the owned result value.
	Result int
	// Cond is the index of the gating result (-1 for none), interpreted
	// per CondKind.
	Cond     int
	CondKind CondKind
	// Release lists method names on the owned value that discharge the
	// obligation.
	Release []string
	// Alias lists method names whose result aliases the owned storage
	// (Bytes); uses of such slices after release are flagged.
	Alias []string
	// Name labels the resource in messages.
	Name string
}

// Transfer describes a call that hands an owned argument to a store.
type Transfer struct {
	Callee string
	// Arg is the index of the argument whose ownership transfers.
	Arg int
	// HasErr: the call returns an error, and the caller keeps ownership
	// when it is non-nil (the store did not adopt the buffer).
	HasErr bool
}

// Config is the ownership manifest.
type Config struct {
	Acquires  []Acquire
	Transfers []Transfer
	// SkipPkgs are packages that implement the buffers themselves;
	// their internal refcount surgery is out of scope.
	SkipPkgs []string
}

// DefaultConfig covers the repo's buffer surfaces.
func DefaultConfig() Config {
	return Config{
		Acquires: []Acquire{
			{Callee: "hfetch/internal/tiers.NewBuf", Result: 0, Cond: -1,
				Release: []string{"Release"}, Alias: []string{"Bytes"},
				Name: "buffer (tiers.NewBuf)"},
			{Callee: "hfetch/internal/tiers.Store.View", Result: 0,
				Cond: 1, CondKind: CondBool,
				Release: []string{"Release"}, Alias: []string{"Bytes"},
				Name: "pinned view (Store.View)"},
			{Callee: "hfetch/internal/tiers.Store.TakeBuf", Result: 0,
				Cond: 1, CondKind: CondErrNil,
				Release: []string{"Release"}, Alias: []string{"Bytes"},
				Name: "taken buffer (Store.TakeBuf)"},
			{Callee: "hfetch/internal/core/server.Server.OpenRangeView", Result: 0,
				Cond: -1, Release: []string{"Close"},
				Name: "range view (Server.OpenRangeView)"},
		},
		Transfers: []Transfer{
			{Callee: "hfetch/internal/tiers.Store.PutBuf", Arg: 1, HasErr: true},
		},
		SkipPkgs: []string{"hfetch/internal/tiers"},
	}
}

// Analyzer checks the repo against the default ownership manifest.
var Analyzer = NewAnalyzer(DefaultConfig())

// NewAnalyzer builds a bufown analyzer for a manifest; fixtures use
// manifests over fixture-local types.
func NewAnalyzer(cfg Config) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "bufown",
		Doc:  "every acquired buffer/view must reach a release, store handoff, or ownership transfer on all paths",
		Run:  func(pass *framework.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *framework.Pass, cfg Config) error {
	if pass.Pkg != nil {
		for _, p := range cfg.SkipPkgs {
			if pass.Pkg.Path() == p {
				return nil
			}
		}
	}
	c := &checker{pass: pass, cfg: cfg}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.walkFunc(fd.Body, fd.Name.Name)
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.walkFunc(lit.Body, "function literal in "+name)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// objState is one tracked object's ownership state on one path.
type objState struct {
	acq      int // index into cfg.Acquires
	mayOwned bool
	deferred bool
	released bool
	condVar  types.Object
	cond     CondKind
	pos      token.Pos
}

// bufFact is the dataflow fact: tracked objects plus slice aliases
// (alias local → the buffer object its storage belongs to).
type bufFact struct {
	objs    map[types.Object]objState
	aliases map[types.Object]types.Object
}

func newFact() *bufFact {
	return &bufFact{
		objs:    make(map[types.Object]objState),
		aliases: make(map[types.Object]types.Object),
	}
}

func (f *bufFact) clone() *bufFact {
	out := &bufFact{
		objs:    make(map[types.Object]objState, len(f.objs)),
		aliases: make(map[types.Object]types.Object, len(f.aliases)),
	}
	for k, v := range f.objs {
		out.objs[k] = v
	}
	for k, v := range f.aliases {
		out.aliases[k] = v
	}
	return out
}

type checker struct {
	pass     *framework.Pass
	cfg      Config
	silent   bool
	funcName string
}

func (c *checker) walkFunc(body *ast.BlockStmt, name string) {
	savedName := c.funcName
	c.funcName = name
	defer func() { c.funcName = savedName }()

	g := framework.NewCFG(body)
	flow := &framework.Flow{
		CFG:   g,
		Entry: newFact(),
		Join: func(a, b framework.Fact) framework.Fact {
			return joinFacts(a.(*bufFact), b.(*bufFact))
		},
		Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
			f := in.(*bufFact).clone()
			for _, n := range b.Nodes {
				c.node(n, f)
			}
			return f
		},
		Refine: c.refine,
		Equal: func(a, b framework.Fact) bool {
			return equalFacts(a.(*bufFact), b.(*bufFact))
		},
	}
	c.silent = true
	res := flow.Solve()
	c.silent = false
	if !res.Converged {
		return
	}
	for _, blk := range g.Blocks {
		in, ok := res.In[blk].(*bufFact)
		if !ok {
			continue // unreachable
		}
		f := in.clone()
		for _, n := range blk.Nodes {
			c.node(n, f)
		}
	}
	if out, ok := res.Out[g.Exit].(*bufFact); ok {
		for _, st := range out.objs {
			if !st.mayOwned {
				continue
			}
			c.reportf(st.pos,
				"%s is not released on every path out of %s; release it on each path, defer the release, or transfer ownership (//lint:allow bufown for a deliberate handoff)",
				c.cfg.Acquires[st.acq].Name, c.funcName)
		}
	}
}

// refine resolves conditional ownership along branch edges: on the edge
// where the gating condition says "owned", the obligation becomes
// unconditional; on the other edge the object was never acquired.
func (c *checker) refine(from, to *framework.Block, out framework.Fact) framework.Fact {
	if from.Branch == nil || len(from.Succs) != 2 {
		return out
	}
	v, kind := condFromExpr(c.pass.TypesInfo, from.Branch)
	if v == nil {
		return out
	}
	if to != from.Succs[0] { // false edge: invert the implication
		kind = negate(kind)
	}
	f := out.(*bufFact)
	var edited *bufFact
	for obj, st := range f.objs {
		if st.condVar != v {
			continue
		}
		owned, known := resolve(st.cond, kind)
		if !known {
			continue
		}
		if edited == nil {
			edited = f.clone()
		}
		if owned {
			st.mayOwned = true
			st.condVar = nil
			st.cond = CondNone
			edited.objs[obj] = st
		} else {
			delete(edited.objs, obj)
		}
	}
	if edited != nil {
		return edited
	}
	return out
}

// edge facts: what a branch edge says about the condition variable.
type edgeFact int

const (
	edgeUnknown edgeFact = iota
	edgeTrue
	edgeFalse
	edgeNil
	edgeNonNil
)

func negate(k edgeFact) edgeFact {
	switch k {
	case edgeTrue:
		return edgeFalse
	case edgeFalse:
		return edgeTrue
	case edgeNil:
		return edgeNonNil
	case edgeNonNil:
		return edgeNil
	}
	return edgeUnknown
}

// condFromExpr decodes `v`, `!v`, `v == nil`, `v != nil` (the true-edge
// implication); nil object for anything else.
func condFromExpr(info *types.Info, e ast.Expr) (types.Object, edgeFact) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e), edgeTrue
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			v, k := condFromExpr(info, e.X)
			return v, negate(k)
		}
	case *ast.BinaryExpr:
		if e.Op != token.EQL && e.Op != token.NEQ {
			return nil, edgeUnknown
		}
		x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
		var id *ast.Ident
		if isNilIdent(info, y) {
			id, _ = x.(*ast.Ident)
		} else if isNilIdent(info, x) {
			id, _ = y.(*ast.Ident)
		}
		if id == nil {
			return nil, edgeUnknown
		}
		k := edgeNil
		if e.Op == token.NEQ {
			k = edgeNonNil
		}
		return info.ObjectOf(id), k
	}
	return nil, edgeUnknown
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// resolve maps (ownership condition, edge implication) to whether the
// object is owned on this edge; known=false leaves the state untouched.
func resolve(cond CondKind, edge edgeFact) (owned, known bool) {
	switch cond {
	case CondBool:
		switch edge {
		case edgeTrue:
			return true, true
		case edgeFalse:
			return false, true
		}
	case CondErrNil:
		switch edge {
		case edgeNil:
			return true, true
		case edgeNonNil:
			return false, true
		}
	case condErrNonNil:
		switch edge {
		case edgeNonNil:
			return true, true
		case edgeNil:
			return false, true
		}
	}
	return false, false
}

// --- transfer ---------------------------------------------------------

func (c *checker) node(n ast.Node, f *bufFact) {
	switch n := n.(type) {
	case framework.DeferredCall:
		// The deferred call executes here, on the exit chain.
		if c.applyRelease(n.CallExpr, f, true) {
			return
		}
		if c.applyTransferStmt(n.CallExpr, f) {
			return
		}
		c.evalExpr(n.CallExpr, f)
	case *ast.DeferStmt:
		// Registration: a deferred release discharges the obligation on
		// every path (the exit chain runs it), but the object stays
		// usable until then.
		if obj, _ := c.releaseTarget(n.Call, f); obj != nil {
			st := f.objs[obj]
			st.mayOwned = false
			st.deferred = true
			f.objs[obj] = st
			return
		}
		if c.applyTransferStmt(n.Call, f) {
			return
		}
		c.evalExpr(n.Call, f)
	case *ast.GoStmt:
		c.evalExpr(n.Call, f)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			if obj := c.trackedIdent(e, f); obj != nil {
				// Returning transfers ownership to the caller.
				delete(f.objs, obj)
				continue
			}
			c.evalExpr(e, f)
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if idx, ok := c.acquireIndex(call); ok {
				// Result discarded in statement position: instant leak.
				c.reportf(call.Pos(),
					"%s acquired here is dropped; bind the result and release it",
					c.cfg.Acquires[idx].Name)
				for _, a := range call.Args {
					c.evalExpr(a, f)
				}
				return
			}
		}
		c.evalExpr(n.X, f)
	case *ast.AssignStmt:
		c.assign(n.Lhs, n.Rhs, n.Tok == token.DEFINE, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, id := range vs.Names {
					lhs[i] = id
				}
				c.assign(lhs, vs.Values, true, f)
			}
		}
	case *ast.SendStmt:
		if obj := c.trackedIdent(n.Value, f); obj != nil {
			delete(f.objs, obj) // sent across a channel: handed off
		} else {
			c.evalExpr(n.Value, f)
		}
		c.evalExpr(n.Chan, f)
	case *ast.IncDecStmt:
		c.evalExpr(n.X, f)
	case *ast.RangeStmt:
		c.evalExpr(n.X, f)
	case ast.Expr:
		// Branch conditions, switch tags, case expressions.
		c.evalExpr(n, f)
	case ast.Stmt:
		ast.Inspect(n, func(nn ast.Node) bool {
			if e, ok := nn.(ast.Expr); ok {
				c.evalExpr(e, f)
				return false
			}
			return true
		})
	}
}

// assign handles binding forms: acquisitions, conditional handoffs,
// alias extraction, ownership moves, and escapes through stores.
func (c *checker) assign(lhs, rhs []ast.Expr, define bool, f *bufFact) {
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if c.bindAcquire(call, lhs, f) {
				return
			}
			if c.bindTransfer(call, lhs, f) {
				return
			}
			if c.bindAlias(call, lhs, f) {
				return
			}
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			c.assignOne(lhs[i], rhs[i], f)
		}
		return
	}
	for _, e := range rhs {
		c.evalExpr(e, f)
	}
	for _, e := range lhs {
		c.dropBinding(e, f)
	}
}

func (c *checker) assignOne(lhs, rhs ast.Expr, f *bufFact) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		// `_ = b` discards the value without moving ownership.
		if obj := c.trackedIdent(rhs, f); obj != nil {
			c.useCheck(obj, rhs.Pos(), f)
		} else {
			c.evalExpr(rhs, f)
		}
		return
	}
	if obj := c.trackedIdent(rhs, f); obj != nil {
		if tgt := localIdentObj(c.pass.TypesInfo, lhs); tgt != nil {
			// b2 := b — the obligation moves with the value.
			f.objs[tgt] = f.objs[obj]
			delete(f.objs, obj)
		} else {
			// Stored into a field, map, slice or global: handed off.
			delete(f.objs, obj)
			c.evalExpr(lhs, f)
		}
		return
	}
	c.evalExpr(rhs, f)
	c.dropBinding(lhs, f)
}

// dropBinding forgets state attached to a variable being overwritten.
func (c *checker) dropBinding(lhs ast.Expr, f *bufFact) {
	if obj := localIdentObj(c.pass.TypesInfo, lhs); obj != nil {
		delete(f.objs, obj)
		delete(f.aliases, obj)
		return
	}
	c.evalExpr(lhs, f)
}

// bindAcquire matches an ownership-creating call and binds the result.
func (c *checker) bindAcquire(call *ast.CallExpr, lhs []ast.Expr, f *bufFact) bool {
	idx, ok := c.acquireIndex(call)
	if !ok {
		return false
	}
	for _, a := range call.Args {
		c.evalExpr(a, f)
	}
	ac := c.cfg.Acquires[idx]
	if ac.Result >= len(lhs) {
		return true
	}
	obj := localIdentObj(c.pass.TypesInfo, lhs[ac.Result])
	if obj == nil {
		if !c.silent {
			c.reportf(call.Pos(),
				"%s acquired here is dropped; bind the result and release it",
				ac.Name)
		}
		return true
	}
	st := objState{acq: idx, mayOwned: true, pos: call.Pos()}
	if ac.Cond >= 0 && ac.Cond < len(lhs) {
		if cv := localIdentObj(c.pass.TypesInfo, lhs[ac.Cond]); cv != nil {
			st.condVar = cv
			st.cond = ac.CondKind
		}
	}
	f.objs[obj] = st
	for _, l := range lhs {
		if o := localIdentObj(c.pass.TypesInfo, l); o != nil {
			delete(f.aliases, o)
		}
	}
	return true
}

// bindTransfer matches `err := store.PutBuf(id, b)`: ownership of b
// moves to the store unless the error comes back non-nil.
func (c *checker) bindTransfer(call *ast.CallExpr, lhs []ast.Expr, f *bufFact) bool {
	tr, obj, ok := c.transferTarget(call, f)
	if !ok {
		return false
	}
	c.evalOtherArgs(call, tr.Arg, f)
	if obj == nil {
		return true
	}
	st := f.objs[obj]
	if tr.HasErr && len(lhs) == 1 {
		if errObj := localIdentObj(c.pass.TypesInfo, lhs[0]); errObj != nil {
			st.condVar = errObj
			st.cond = condErrNonNil
			st.mayOwned = true
			f.objs[obj] = st
			return true
		}
	}
	// Error ignored (or no error): treat as handed off.
	delete(f.objs, obj)
	return true
}

// bindAlias matches `data := b.Bytes()`.
func (c *checker) bindAlias(call *ast.CallExpr, lhs []ast.Expr, f *bufFact) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(lhs) != 1 {
		return false
	}
	obj := c.trackedIdent(sel.X, f)
	if obj == nil {
		return false
	}
	st := f.objs[obj]
	aliased := false
	for _, m := range c.cfg.Acquires[st.acq].Alias {
		if sel.Sel.Name == m {
			aliased = true
		}
	}
	if !aliased {
		return false
	}
	c.useCheck(obj, sel.X.Pos(), f)
	if tgt := localIdentObj(c.pass.TypesInfo, lhs[0]); tgt != nil {
		f.aliases[tgt] = obj
	}
	return true
}

// applyTransferStmt handles a transfer call whose result is discarded:
// ownership is treated as handed off outright.
func (c *checker) applyTransferStmt(call *ast.CallExpr, f *bufFact) bool {
	tr, obj, ok := c.transferTarget(call, f)
	if !ok {
		return false
	}
	c.evalOtherArgs(call, tr.Arg, f)
	if obj != nil {
		delete(f.objs, obj)
	}
	return true
}

func (c *checker) evalOtherArgs(call *ast.CallExpr, skip int, f *bufFact) {
	for i, a := range call.Args {
		if i == skip {
			continue
		}
		c.evalExpr(a, f)
	}
}

// transferTarget matches a configured handoff call; obj is the tracked
// argument (nil when the argument is not tracked).
func (c *checker) transferTarget(call *ast.CallExpr, f *bufFact) (Transfer, types.Object, bool) {
	key := calleeKey(c.pass.TypesInfo, call)
	if key == "" {
		return Transfer{}, nil, false
	}
	for _, tr := range c.cfg.Transfers {
		if tr.Callee != key {
			continue
		}
		var obj types.Object
		if tr.Arg < len(call.Args) {
			obj = c.trackedIdent(call.Args[tr.Arg], f)
		}
		return tr, obj, true
	}
	return Transfer{}, nil, false
}

// releaseTarget matches `b.Release()` / `v.Close()` on a tracked local.
func (c *checker) releaseTarget(call *ast.CallExpr, f *bufFact) (types.Object, objState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, objState{}
	}
	obj := c.trackedIdent(sel.X, f)
	if obj == nil {
		return nil, objState{}
	}
	st := f.objs[obj]
	for _, m := range c.cfg.Acquires[st.acq].Release {
		if sel.Sel.Name == m {
			return obj, st
		}
	}
	return nil, objState{}
}

// applyRelease marks a release; double releases are reported. A release
// arriving from the exit chain only applies when the defer was
// registered on every path (must-deferred): the chain is shared by all
// exits, so a conditionally registered defer must not discharge the
// obligation of paths that never registered it.
func (c *checker) applyRelease(call *ast.CallExpr, f *bufFact, fromChain bool) bool {
	obj, st := c.releaseTarget(call, f)
	if obj == nil {
		return false
	}
	if fromChain && !st.deferred {
		return true
	}
	if st.released && !fromChain {
		c.reportf(call.Pos(), "%s released again; it was already released on this path",
			c.cfg.Acquires[st.acq].Name)
	}
	st.mayOwned = false
	st.released = true
	f.objs[obj] = st
	return true
}

// evalExpr applies an expression's side effects to the fact: releases,
// handoffs, escapes through calls or closures, and use-after-release
// checks on tracked objects and their aliases.
func (c *checker) evalExpr(e ast.Expr, f *bufFact) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if c.applyRelease(e, f, false) {
			return
		}
		if c.applyTransferStmt(e, f) {
			return
		}
		if _, ok := c.acquireIndex(e); ok {
			// Acquire in expression position (returned, passed along):
			// ownership goes straight to the consumer.
			for _, a := range e.Args {
				c.evalExpr(a, f)
			}
			return
		}
		// Method call on a tracked object (b.Len()): a use, not an
		// escape. Anything tracked passed as an argument escapes.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if obj := c.trackedIdent(sel.X, f); obj != nil {
				c.useCheck(obj, sel.X.Pos(), f)
			} else {
				c.evalExpr(sel.X, f)
			}
		} else {
			c.evalExpr(e.Fun, f)
		}
		for _, a := range e.Args {
			if obj := c.trackedIdent(a, f); obj != nil {
				c.useCheck(obj, a.Pos(), f)
				delete(f.objs, obj) // handed to the callee
				continue
			}
			c.evalExpr(a, f)
		}
	case *ast.Ident:
		if obj := c.pass.TypesInfo.ObjectOf(e); obj != nil {
			c.useCheck(obj, e.Pos(), f)
		}
	case *ast.FuncLit:
		// Captured objects escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, tracked := f.objs[obj]; tracked {
					delete(f.objs, obj)
				}
			}
			return true
		})
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if obj := c.trackedIdent(el, f); obj != nil {
				delete(f.objs, obj) // stored into a literal: handed off
				continue
			}
			c.evalExpr(el, f)
		}
	case *ast.UnaryExpr:
		c.evalExpr(e.X, f)
	case *ast.BinaryExpr:
		c.evalExpr(e.X, f)
		c.evalExpr(e.Y, f)
	case *ast.SelectorExpr:
		c.evalExpr(e.X, f)
	case *ast.IndexExpr:
		c.evalExpr(e.X, f)
		c.evalExpr(e.Index, f)
	case *ast.SliceExpr:
		c.evalExpr(e.X, f)
		c.evalExpr(e.Low, f)
		c.evalExpr(e.High, f)
		c.evalExpr(e.Max, f)
	case *ast.StarExpr:
		c.evalExpr(e.X, f)
	case *ast.TypeAssertExpr:
		c.evalExpr(e.X, f)
	case *ast.KeyValueExpr:
		c.evalExpr(e.Key, f)
		c.evalExpr(e.Value, f)
	}
}

// useCheck reports uses of released objects and of slices aliasing
// released buffers.
func (c *checker) useCheck(obj types.Object, pos token.Pos, f *bufFact) {
	if st, ok := f.objs[obj]; ok && st.released {
		c.reportf(pos, "%s used after release",
			c.cfg.Acquires[st.acq].Name)
		return
	}
	if buf, ok := f.aliases[obj]; ok {
		if st, ok := f.objs[buf]; ok && st.released {
			c.reportf(pos, "slice aliasing %s used after the buffer was released",
				c.cfg.Acquires[st.acq].Name)
		}
	}
}

// trackedIdent resolves e to a tracked object, or nil.
func (c *checker) trackedIdent(e ast.Expr, f *bufFact) types.Object {
	obj := localIdentObj(c.pass.TypesInfo, e)
	if obj == nil {
		return nil
	}
	if _, ok := f.objs[obj]; !ok {
		return nil
	}
	return obj
}

// acquireIndex matches a call against the acquisition manifest.
func (c *checker) acquireIndex(call *ast.CallExpr) (int, bool) {
	key := calleeKey(c.pass.TypesInfo, call)
	if key == "" {
		return 0, false
	}
	for i, ac := range c.cfg.Acquires {
		if ac.Callee == key {
			return i, true
		}
	}
	return 0, false
}

// calleeKey renders the called function as "pkgpath.Func" or
// "pkgpath.Type.Method" for manifest matching.
func calleeKey(info *types.Info, call *ast.CallExpr) string {
	fn := framework.CalleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if recv := framework.ReceiverNamed(fn); recv != nil {
		return framework.TypeKey(recv) + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// localIdentObj resolves a plain identifier to its object (nil for
// blank, fields, and anything more structured).
func localIdentObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := info.ObjectOf(id)
	v, isVar := obj.(*types.Var)
	if !isVar || v.IsField() {
		return nil
	}
	if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
		// Package-level variable: a store there is a handoff, not a
		// local rebinding.
		return nil
	}
	return obj
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.silent {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// --- lattice ----------------------------------------------------------

func joinFacts(a, b *bufFact) framework.Fact {
	out := a.clone()
	for obj, sb := range b.objs {
		sa, ok := out.objs[obj]
		if !ok {
			out.objs[obj] = sb
			continue
		}
		merged := sa
		merged.mayOwned = sa.mayOwned || sb.mayOwned
		// must-deferred: the exit chain may discharge only defers
		// registered on every inbound path.
		merged.deferred = sa.deferred && sb.deferred
		merged.released = sa.released && sb.released
		if sa.condVar != sb.condVar || sa.cond != sb.cond {
			// Conflicting conditional views: fall back to may-owned so a
			// real leak still surfaces.
			merged.condVar = nil
			merged.cond = CondNone
		}
		if sb.pos < merged.pos {
			merged.pos = sb.pos
		}
		out.objs[obj] = merged
	}
	for k, v := range b.aliases {
		if _, ok := out.aliases[k]; !ok {
			out.aliases[k] = v
		}
	}
	return out
}

func equalFacts(a, b *bufFact) bool {
	if len(a.objs) != len(b.objs) || len(a.aliases) != len(b.aliases) {
		return false
	}
	for k, v := range a.objs {
		if b.objs[k] != v {
			return false
		}
	}
	for k, v := range a.aliases {
		if b.aliases[k] != v {
			return false
		}
	}
	return true
}

// String summarizes the manifest for docs/tests.
func (cfg Config) String() string {
	var sb strings.Builder
	for _, a := range cfg.Acquires {
		sb.WriteString(a.Callee + " ")
	}
	return strings.TrimSpace(sb.String())
}
