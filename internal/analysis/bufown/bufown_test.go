package bufown

import (
	"testing"

	"hfetch/internal/analysis/analysistest"
)

const fixturePkg = "hfetch/internal/analysis/bufown/testdata/src/buffixture"
const cleanPkg = "hfetch/internal/analysis/bufown/testdata/src/bufclean"

func fixtureConfig(pkg string) Config {
	return Config{
		Acquires: []Acquire{
			{Callee: pkg + ".NewBuf", Result: 0, Cond: -1,
				Release: []string{"Release"}, Alias: []string{"Bytes"},
				Name: "buffer (NewBuf)"},
			{Callee: pkg + ".Store.View", Result: 0,
				Cond: 1, CondKind: CondBool,
				Release: []string{"Release"}, Alias: []string{"Bytes"},
				Name: "pinned view (Store.View)"},
			{Callee: pkg + ".Store.TakeBuf", Result: 0,
				Cond: 1, CondKind: CondErrNil,
				Release: []string{"Release"}, Alias: []string{"Bytes"},
				Name: "taken buffer (Store.TakeBuf)"},
		},
		Transfers: []Transfer{
			{Callee: pkg + ".Store.PutBuf", Arg: 1, HasErr: true},
		},
	}
}

func TestBufownFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/buffixture", NewAnalyzer(fixtureConfig(fixturePkg)))
}

func TestBufownClean(t *testing.T) {
	analysistest.NoFindings(t, "./testdata/src/bufclean", NewAnalyzer(fixtureConfig(cleanPkg)))
}
