// Package driftfixture is the driftcheck fixture: a miniature repo
// with a registry, a config struct, daemon flags, and sibling DESIGN.md
// / README.md documents that are deliberately out of sync with the
// code in both directions.
package driftfixture

import "flag"

// Registry mimics telemetry.Registry's registration surface; driftcheck
// matches registration calls by method name.
type Registry struct{}

func (r *Registry) Counter(name, help string, labelPairs ...string) int { return 0 }
func (r *Registry) GaugeFunc(name, help string, fn func() int64)        {}
func (r *Registry) HistVec(name, help, label string) int                { return 0 }
func (r *Registry) Lookup(name string) int                              { return 0 }

// WellKnown proves constant names resolve like literals do.
const WellKnown = "hfetch_fix_const_total"

// Config mimics the public hfetch.Config; README's knob table cites
// its exported field names.
type Config struct {
	GoodKnob   int  `json:"good_knob"`
	QuietKnob  bool `json:"quiet_knob,omitempty"`
	unexported int  `json:"sneaky"`
}

// Register registers one documented family, one undocumented family,
// and one const-named family; it also queries a family by name, which
// must NOT count as a registration.
func Register(r *Registry) {
	r.Counter("hfetch_fix_good_total", "documented")
	r.GaugeFunc("hfetch_fix_rogue_depth", "undocumented: code-side drift", nil)
	r.HistVec(WellKnown, "documented via const", "tier")
	r.Lookup("hfetch_fix_phantom_total") // consumer lookup, not a registration
}

// Flags wires the daemon flags: good-knob is documented in README's
// knob table, hidden-switch appears nowhere in README.
func Flags() {
	_ = flag.Int("good-knob", 0, "documented knob override")
	_ = flag.Bool("hidden-switch", false, "undocumented: flag-side drift")
}
