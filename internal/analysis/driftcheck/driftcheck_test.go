package driftcheck

import (
	"go/token"
	"strings"
	"testing"

	"hfetch/internal/analysis/framework"
)

const fixturePkg = "hfetch/internal/analysis/driftcheck/testdata/src/driftfixture"

func fixtureConfig() Config {
	return Config{
		MetricPrefix: "hfetch_",
		TelemetryPkg: fixturePkg,
		ConfigPkg:    fixturePkg,
		RootPkg:      fixturePkg,
		MainPkg:      fixturePkg,
		DesignPath:   "DESIGN.md",
		ReadmePath:   "README.md",
		Root:         "testdata/src/driftfixture",
	}
}

func runFixture(t *testing.T, cfg Config) ([]framework.Diagnostic, *token.FileSet) {
	t.Helper()
	pkgs, err := framework.Load(".", "./testdata/src/driftfixture")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages matched fixture pattern")
	}
	diags, err := framework.Run(pkgs, []*framework.Analyzer{NewAnalyzer(cfg)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags, pkgs[0].Fset
}

// TestDriftFixture is the acceptance demonstration: a metric or knob
// added on one side only makes the lint (and therefore CI) fail, with
// findings pointing at the offending code line or markdown row.
func TestDriftFixture(t *testing.T) {
	diags, fset := runFixture(t, fixtureConfig())

	type want struct {
		fileFrag string // substring of the reported filename
		msgFrag  string
	}
	wants := []want{
		{"driftfixture.go", `metric family "hfetch_fix_rogue_depth" is registered but DESIGN.md's exported-metrics table has no row`},
		{"DESIGN.md", `DESIGN.md documents metric family "hfetch_fix_ghost_total" but nothing registers it`},
		{"README.md", `README.md knob table names json tag "phantom_knob" but the config package declares no such tag`},
		{"README.md", `README.md knob table names Config field "PhantomKnob" but the public Config struct has no such field`},
		{"README.md", `README.md knob table lists flag -phantom-knob but the daemon does not register it`},
		{"driftfixture.go", `daemon flag -hidden-switch is not mentioned anywhere in README.md`},
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			pos := fset.Position(d.Pos)
			if strings.Contains(pos.Filename, w.fileFrag) && strings.Contains(d.Message, w.msgFrag) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding %q in %s", w.msgFrag, w.fileFrag)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected finding at %s: %s", fset.Position(d.Pos), d.Message)
		}
	}

	// Markdown findings must carry real line numbers: the ghost row is
	// DESIGN.md line 9, the phantom row README.md line 9.
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "DESIGN.md") && pos.Line != 9 {
			t.Errorf("DESIGN.md finding at line %d, want 9", pos.Line)
		}
		if strings.HasSuffix(pos.Filename, "README.md") && pos.Line != 9 {
			t.Errorf("README.md finding at line %d, want 9", pos.Line)
		}
	}
}

// TestDriftInertWithoutMarkers checks the Finish gate: when the
// telemetry/config marker packages were not loaded (subset lints), no
// contract findings appear at all.
func TestDriftInertWithoutMarkers(t *testing.T) {
	cfg := fixtureConfig()
	cfg.TelemetryPkg = "hfetch/internal/telemetry" // not in the loaded set
	if diags, _ := runFixture(t, cfg); len(diags) != 0 {
		t.Fatalf("expected no findings without markers, got %d: %v", len(diags), diags)
	}
}
