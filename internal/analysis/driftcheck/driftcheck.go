// Package driftcheck cross-checks the repo's observable contracts
// against their documentation so neither side drifts silently:
//
//   - every metric family registered in code must have a row in
//     DESIGN.md's exported-metrics table, and every documented row must
//     still be registered somewhere (renamed or deleted metrics leave a
//     stale row behind);
//   - every row of README.md's knob table must name a real
//     internal/config json tag, a real field on the public hfetch.Config
//     struct, and (when it lists a flag) a flag actually wired in
//     cmd/hfetchd;
//   - every cmd/hfetchd flag must be mentioned in README.md, so new
//     daemon switches cannot ship undocumented.
//
// Per-package Runs only collect facts (metric registrations, json tags,
// Config fields, flag wiring) into Pass.Facts; the whole-tree Finish
// hook unions them, parses the markdown tables, and reports one-sided
// drift. Findings on markdown land at real file:line positions minted
// via FileSet.AddFile, so editors and the CI problem matcher can jump
// to the stale row.
//
// The Finish hook is inert unless both the telemetry and config marker
// packages were among the loaded set: partial runs (self-linting only
// internal/analysis, fixture loads) see no contract findings, while a
// whole-tree `hfetchlint ./...` checks everything it can see.
package driftcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Config parameterizes the analyzer so fixture tests can point it at a
// miniature repo layout.
type Config struct {
	// MetricPrefix selects which registration names are "ours".
	MetricPrefix string
	// TelemetryPkg and ConfigPkg are the marker packages: the Finish
	// hook only runs when both were loaded, so subset lints stay inert.
	TelemetryPkg string
	ConfigPkg    string
	// RootPkg declares the package holding the public Config struct
	// whose exported field names the README knob table cites.
	RootPkg string
	// MainPkg is the daemon package whose flag.* registrations define
	// the documented CLI surface.
	MainPkg string
	// DesignPath and ReadmePath are the contract documents, relative to
	// Root.
	DesignPath string
	ReadmePath string
	// Root is the directory holding the documents. Empty means: derive
	// the repo root from ConfigPkg's source location by stripping the
	// package path suffix from its directory.
	Root string
}

// DefaultConfig describes the real repo layout.
func DefaultConfig() Config {
	return Config{
		MetricPrefix: "hfetch_",
		TelemetryPkg: "hfetch/internal/telemetry",
		ConfigPkg:    "hfetch/internal/config",
		RootPkg:      "hfetch",
		MainPkg:      "hfetch/cmd/hfetchd",
		DesignPath:   "DESIGN.md",
		ReadmePath:   "README.md",
	}
}

// Analyzer checks code↔documentation contract drift with the default
// repo layout.
var Analyzer = NewAnalyzer(DefaultConfig())

// regMethods are the telemetry.Registry registration methods whose
// first argument names a metric family.
var regMethods = map[string]bool{
	"Counter":     true,
	"CounterFunc": true,
	"Gauge":       true,
	"GaugeFunc":   true,
	"Histogram":   true,
	"CounterVec":  true,
	"GaugeVec":    true,
	"HistVec":     true,
}

// flagFuncs are the package-level flag constructors (and *FlagSet
// methods of the same names) whose first argument names a flag.
var flagFuncs = map[string]bool{
	"Bool": true, "Int": true, "Int64": true, "Uint": true,
	"Uint64": true, "Float64": true, "String": true, "Duration": true,
}

// facts is what one package's Run leaves behind for Finish.
type facts struct {
	metrics map[string]token.Pos // metric family -> first registration
	knobs   map[string]bool      // json tag names (ConfigPkg only)
	fields  map[string]bool      // exported Config fields (RootPkg only)
	flags   map[string]token.Pos // flag names (MainPkg only)
	dir     string               // directory of the package's first file
}

// NewAnalyzer builds a driftcheck instance for the given layout.
func NewAnalyzer(cfg Config) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "driftcheck",
		Doc:  "metric families, config knobs and daemon flags must stay in sync with DESIGN.md and README.md",
	}
	a.Run = func(pass *framework.Pass) error { return run(pass, cfg) }
	a.Finish = func(fc *framework.FinishContext) error { return finish(fc, cfg) }
	return a
}

func run(pass *framework.Pass, cfg Config) error {
	f := &facts{
		metrics: map[string]token.Pos{},
		knobs:   map[string]bool{},
		fields:  map[string]bool{},
		flags:   map[string]token.Pos{},
	}
	pass.Facts = f
	if len(pass.Files) > 0 {
		f.dir = filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	}
	pkgPath := ""
	if pass.Pkg != nil {
		pkgPath = pass.Pkg.Path()
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			collectMetric(pass, cfg, f, call)
			if pkgPath == cfg.MainPkg {
				collectFlag(pass, f, call)
			}
			return true
		})
	}
	if pkgPath == cfg.ConfigPkg {
		collectKnobs(pass, f)
	}
	if pkgPath == cfg.RootPkg {
		collectFields(pass, f)
	}
	return nil
}

// collectMetric records a registration call's metric family. The name
// argument may be a literal or any constant string expression
// (e.g. telemetry.StageHistName), so it is resolved through the
// typechecker's constant folding.
func collectMetric(pass *framework.Pass, cfg Config, f *facts, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !regMethods[sel.Sel.Name] || len(call.Args) < 1 {
		return
	}
	name, ok := constString(pass, call.Args[0])
	if !ok || !strings.HasPrefix(name, cfg.MetricPrefix) {
		return
	}
	if _, seen := f.metrics[name]; !seen {
		f.metrics[name] = call.Args[0].Pos()
	}
}

func collectFlag(pass *framework.Pass, f *facts, call *ast.CallExpr) {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "flag" || !flagFuncs[fn.Name()] || len(call.Args) < 1 {
		return
	}
	name, ok := constString(pass, call.Args[0])
	if !ok {
		return
	}
	if _, seen := f.flags[name]; !seen {
		f.flags[name] = call.Args[0].Pos()
	}
}

// collectKnobs gathers every json tag name declared on a struct field
// in the config package.
func collectKnobs(pass *framework.Pass, f *facts) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if fld.Tag == nil {
					continue
				}
				tag := strings.Trim(fld.Tag.Value, "`")
				name := jsonTagName(tag)
				if name != "" {
					f.knobs[name] = true
				}
			}
			return true
		})
	}
}

// collectFields gathers the exported field names of the package's
// Config struct.
func collectFields(pass *framework.Pass, f *facts) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Config" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, id := range fld.Names {
						if id.IsExported() {
							f.fields[id.Name] = true
						}
					}
				}
			}
		}
	}
}

func constString(pass *framework.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// jsonTagName extracts the name part of a `json:"name,opts"` tag.
func jsonTagName(tag string) string {
	const key = `json:"`
	i := strings.Index(tag, key)
	if i < 0 {
		return ""
	}
	rest := tag[i+len(key):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return ""
	}
	name := rest[:j]
	if k := strings.Index(name, ","); k >= 0 {
		name = name[:k]
	}
	if name == "" || name == "-" {
		return ""
	}
	return name
}

// --- Finish: union facts, parse documents, report drift -------------

// metricRowRe matches a DESIGN.md exported-metrics table row and
// captures the family name (label set stripped).
var metricRowRe = regexp.MustCompile("^\\| `([a-z0-9_]+)(?:\\{[^}]*\\})?` \\|")

// knobRowRe matches a README.md knob table row:
// | `json_name` / `Field` | ... or | `json_name` / `Field` / `-flag` | ...
var knobRowRe = regexp.MustCompile("^\\| `([a-z0-9_]+)` / `([A-Za-z][A-Za-z0-9]*)`(?: / `-([a-z0-9-]+)`)? \\|")

type docFile struct {
	path  string
	data  string
	lines []int // byte offset of each line start
	tf    *token.File
}

func finish(fc *framework.FinishContext, cfg Config) error {
	merged := &facts{
		metrics: map[string]token.Pos{},
		knobs:   map[string]bool{},
		fields:  map[string]bool{},
		flags:   map[string]token.Pos{},
	}
	var haveTelemetry, haveConfig, haveMain, haveRoot bool
	var configDir string
	for _, pass := range fc.Passes {
		pf, ok := pass.Facts.(*facts)
		if !ok || pass.Pkg == nil {
			continue
		}
		pkgPath := pass.Pkg.Path()
		if pkgPath == cfg.TelemetryPkg {
			haveTelemetry = true
		}
		if pkgPath == cfg.ConfigPkg {
			haveConfig = true
			configDir = pf.dir
		}
		if pkgPath == cfg.MainPkg {
			haveMain = true
		}
		if pkgPath == cfg.RootPkg {
			haveRoot = true
		}
		for name, pos := range pf.metrics {
			if _, seen := merged.metrics[name]; !seen {
				merged.metrics[name] = pos
			}
		}
		for name := range pf.knobs {
			merged.knobs[name] = true
		}
		for name := range pf.fields {
			merged.fields[name] = true
		}
		for name, pos := range pf.flags {
			if _, seen := merged.flags[name]; !seen {
				merged.flags[name] = pos
			}
		}
	}
	// Marker gate: without both halves of the contract in view, any
	// comparison would report phantom drift.
	if !haveTelemetry || !haveConfig {
		return nil
	}
	root := cfg.Root
	if root == "" {
		root = deriveRoot(configDir, cfg.ConfigPkg)
		if root == "" {
			return fmt.Errorf("cannot derive repo root from %q for package %q", configDir, cfg.ConfigPkg)
		}
	}

	design, err := loadDoc(fc.Fset, filepath.Join(root, cfg.DesignPath))
	if err != nil {
		return err
	}
	readme, err := loadDoc(fc.Fset, filepath.Join(root, cfg.ReadmePath))
	if err != nil {
		return err
	}

	checkMetrics(fc, cfg, merged, design)
	checkKnobs(fc, cfg, merged, readme, haveMain, haveRoot)
	if haveMain {
		checkFlags(fc, cfg, merged, readme)
	}
	return nil
}

// deriveRoot strips the in-module path suffix of pkgPath ("m/a/b" ->
// "a/b") from dir, yielding the module root directory.
func deriveRoot(dir, pkgPath string) string {
	if dir == "" {
		return ""
	}
	segs := strings.Split(pkgPath, "/")
	for i := 1; i < len(segs); i++ {
		suffix := string(filepath.Separator) + filepath.Join(segs[i:]...)
		if strings.HasSuffix(dir, suffix) {
			return strings.TrimSuffix(dir, suffix)
		}
	}
	return ""
}

// loadDoc reads a markdown file and registers it with the fileset so
// findings can point into it.
func loadDoc(fset *token.FileSet, path string) (*docFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("driftcheck contract document: %w", err)
	}
	d := &docFile{path: path, data: string(raw)}
	d.lines = append(d.lines, 0)
	for i, c := range raw {
		if c == '\n' && i+1 < len(raw) {
			d.lines = append(d.lines, i+1)
		}
	}
	d.tf = fset.AddFile(path, -1, len(raw))
	d.tf.SetLinesForContent(raw)
	return d, nil
}

// linePos returns the token.Pos of the start of 1-based line n.
func (d *docFile) linePos(n int) token.Pos {
	if n < 1 || n > len(d.lines) {
		return d.tf.Pos(0)
	}
	return d.tf.Pos(d.lines[n-1])
}

// eachLine calls fn with (1-based line number, line text).
func (d *docFile) eachLine(fn func(n int, line string)) {
	for i, off := range d.lines {
		end := len(d.data)
		if i+1 < len(d.lines) {
			end = d.lines[i+1] - 1
		}
		line := strings.TrimRight(d.data[off:end], "\r\n")
		fn(i+1, line)
	}
}

func checkMetrics(fc *framework.FinishContext, cfg Config, merged *facts, design *docFile) {
	documented := map[string]int{} // family -> doc line
	design.eachLine(func(n int, line string) {
		m := metricRowRe.FindStringSubmatch(line)
		if m == nil || !strings.HasPrefix(m[1], cfg.MetricPrefix) {
			return
		}
		if _, seen := documented[m[1]]; !seen {
			documented[m[1]] = n
		}
	})
	for name, pos := range merged.metrics {
		if _, ok := documented[name]; !ok {
			fc.Report(framework.Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("metric family %q is registered but %s's exported-metrics table has no row for it; document it or drop the metric",
					name, cfg.DesignPath),
			})
		}
	}
	for name, line := range documented {
		if _, ok := merged.metrics[name]; !ok {
			fc.Report(framework.Diagnostic{
				Pos: design.linePos(line),
				Message: fmt.Sprintf("%s documents metric family %q but nothing registers it; delete the stale row or restore the metric",
					cfg.DesignPath, name),
			})
		}
	}
}

func checkKnobs(fc *framework.FinishContext, cfg Config, merged *facts, readme *docFile, haveMain, haveRoot bool) {
	readme.eachLine(func(n int, line string) {
		m := knobRowRe.FindStringSubmatch(line)
		if m == nil {
			return
		}
		jsonName, field, flagName := m[1], m[2], m[3]
		if !merged.knobs[jsonName] {
			fc.Report(framework.Diagnostic{
				Pos: readme.linePos(n),
				Message: fmt.Sprintf("%s knob table names json tag %q but the config package declares no such tag",
					cfg.ReadmePath, jsonName),
			})
		}
		if haveRoot && !merged.fields[field] {
			fc.Report(framework.Diagnostic{
				Pos: readme.linePos(n),
				Message: fmt.Sprintf("%s knob table names Config field %q but the public Config struct has no such field",
					cfg.ReadmePath, field),
			})
		}
		if haveMain && flagName != "" {
			if _, ok := merged.flags[flagName]; !ok {
				fc.Report(framework.Diagnostic{
					Pos: readme.linePos(n),
					Message: fmt.Sprintf("%s knob table lists flag -%s but the daemon does not register it",
						cfg.ReadmePath, flagName),
				})
			}
		}
	})
}

// checkFlags requires every daemon flag to be mentioned (as `-name`
// preceded by whitespace, a backquote or a parenthesis) somewhere in
// the README.
func checkFlags(fc *framework.FinishContext, cfg Config, merged *facts, readme *docFile) {
	for name, pos := range merged.flags {
		re := regexp.MustCompile(`(^|[\s` + "`" + `(])-` + regexp.QuoteMeta(name) + `($|[^a-z0-9-])`)
		if re.MatchString(readme.data) {
			continue
		}
		fc.Report(framework.Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("daemon flag -%s is not mentioned anywhere in %s; document it in the knob table or prose",
				name, cfg.ReadmePath),
		})
	}
}
