// Package analysistest runs framework analyzers over golden fixture
// packages and checks reported findings against expectations written in
// the fixture source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	q.mu.Lock() // want `held across ioclient call`
//
// A trailing "// want" comment carries one or more backquoted or quoted
// regular expressions, each of which must match exactly one finding on
// that line. Findings with no matching expectation, and expectations
// with no matching finding, fail the test.
//
// Fixture packages live under testdata/src/<name> next to the analyzer
// package. testdata is invisible to ./... wildcards, so deliberately
// buggy fixtures never break `go build ./...` or the hfetchlint gate —
// they are compiled only when a test loads them explicitly.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"hfetch/internal/analysis/framework"
)

// wantRe extracts the expectation regexps from a "// want" comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture package named by pattern (relative to the test's
// working directory, e.g. "./testdata/src/lockfixture"), applies the
// analyzers, and compares findings with // want expectations.
func Run(t *testing.T, pattern string, analyzers ...*framework.Analyzer) {
	t.Helper()
	pkgs, err := framework.Load(".", pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages matched", pattern)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture type error: %v", terr)
		}
	}

	var expects []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			expects = append(expects, collectWants(t, pkg.Fset, f)...)
		}
	}

	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.met || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want") {
				continue
			}
			rest := strings.TrimPrefix(text, "want")
			pos := fset.Position(c.Pos())
			matches := wantRe.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				t.Errorf("%s: malformed want comment: %q", pos, c.Text)
				continue
			}
			for _, m := range matches {
				lit := m[1]
				if lit == "" {
					lit = m[2]
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
					continue
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// NoFindings asserts the analyzers are silent on the fixture package —
// used for the clean-case fixtures.
func NoFindings(t *testing.T, pattern string, analyzers ...*framework.Analyzer) {
	t.Helper()
	pkgs, err := framework.Load(".", pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		t.Errorf("%s: unexpected finding [%s]: %s", pos, d.Analyzer, d.Message)
	}
}
