// Package lockorder enforces ARCHITECTURE.md's lock-ordering chain.
//
// For every function it derives the set of manifest locks held at each
// basic block by a forward dataflow over the framework CFG (Lock/RLock
// acquire, Unlock/RUnlock release, defer Unlock = held until the exit
// chain runs it, merge points joined by intersection so a lock counts
// as held only when held on every inbound path, bodies of `go`
// statements and function literals analyzed with an empty held set),
// then flags:
//
//   - acquiring a lock whose rank is ≤ the rank of any lock already
//     held (out-of-order, or a second lock of the same class);
//   - acquiring any lock while holding one from the released-between
//     prefix of the chain (ring / epoch stripe / dhm shard);
//   - holding a non-exempt lock across an I/O barrier — a call into
//     ioclient, a movement-interface method, the mover completion
//     callback, or any same-package function that transitively reaches
//     one.
//
// The analysis is intra-procedural with one package-local call-graph
// closure for barrier reachability; it does not track locks passed by
// pointer into helpers, which matches how the repo actually structures
// its critical sections. Being CFG-based it is path-sensitive across
// loops, labeled breaks, goto and switch fallthrough, which the old
// syntactic walk approximated.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Analyzer checks the repo against the default manifest.
var Analyzer = NewAnalyzer(Default())

// NewAnalyzer builds a lockorder analyzer for a manifest; fixtures use
// manifests over fixture-local types.
func NewAnalyzer(m Manifest) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "lockorder",
		Doc:  "enforce the ARCHITECTURE.md lock-ordering chain and the no-lock-across-I/O rule",
		Run:  func(pass *framework.Pass) error { return run(pass, m) },
	}
}

func run(pass *framework.Pass, m Manifest) error {
	// Inside a barrier package every call would count as a barrier and
	// its own store-handling would self-flag; the rule is about holding
	// locks *outside* the I/O client.
	for _, bp := range m.BarrierPkgs {
		if pass.Pkg != nil && pass.Pkg.Path() == bp {
			return nil
		}
	}
	c := &checker{pass: pass, m: m,
		rank:    make(map[FieldSel]int),
		exempt:  make(map[string]bool),
		barrier: make(map[string]bool),
		bpkgs:   make(map[string]bool),
	}
	for i, cl := range m.Classes {
		for _, f := range cl.Fields {
			c.rank[f] = i
		}
	}
	for _, n := range m.BarrierExempt {
		c.exempt[n] = true
	}
	for _, f := range m.BarrierFuncs {
		c.barrier[f] = true
	}
	for _, p := range m.BarrierPkgs {
		c.bpkgs[p] = true
	}
	c.buildReach()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.walkFunc(fd.Body)
		}
	}
	return nil
}

type held struct {
	rank int
	pos  token.Pos
}

// lockFact is the dataflow fact: the set of manifest locks held at a
// program point, with acquisition positions for the messages.
type lockFact []held

type checker struct {
	pass    *framework.Pass
	m       Manifest
	rank    map[FieldSel]int
	exempt  map[string]bool
	barrier map[string]bool
	bpkgs   map[string]bool
	// reach marks package-local functions that transitively perform a
	// barrier call.
	reach map[*types.Func]bool
	// silent suppresses reporting during the fixpoint iterations; the
	// post-solve reporting pass clears it.
	silent bool
}

// buildReach computes which functions declared in this package reach an
// I/O barrier, by fixpoint over the package-local static call graph.
func (c *checker) buildReach() {
	direct := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c.isBarrierCall(call) {
					direct[fn] = true
					return true
				}
				if callee := framework.CalleeFunc(c.pass.TypesInfo, call); callee != nil &&
					callee.Pkg() == c.pass.Pkg {
					callees[fn] = append(callees[fn], callee)
				}
				return true
			})
		}
	}
	c.reach = direct
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if c.reach[fn] {
				continue
			}
			for _, callee := range cs {
				if c.reach[callee] {
					c.reach[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// isBarrierCall reports whether call is a direct I/O barrier.
func (c *checker) isBarrierCall(call *ast.CallExpr) bool {
	// Field-typed callback: m.done(mv, err).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			key := framework.TypeKey(framework.Named(s.Recv())) + "." + s.Obj().Name()
			if c.barrier[key] {
				return true
			}
		}
	}
	fn := framework.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && c.bpkgs[fn.Pkg().Path()] {
		return true
	}
	if recv := framework.ReceiverNamed(fn); recv != nil {
		if c.barrier[framework.TypeKey(recv)+"."+fn.Name()] {
			return true
		}
	}
	return false
}

// lockTarget resolves the manifest rank of the mutex a
// Lock/RLock/Unlock/RUnlock call operates on; ok=false when the
// receiver is not a manifest lock field.
func (c *checker) lockTarget(call *ast.CallExpr) (rank int, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return 0, false, false
	}
	field, isField := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isField {
		return 0, false, false
	}
	fs, fok := c.pass.TypesInfo.Selections[field]
	if !fok || fs.Kind() != types.FieldVal {
		return 0, false, false
	}
	key := FieldSel{
		Type:  framework.TypeKey(framework.Named(fs.Recv())),
		Field: fs.Obj().Name(),
	}
	r, known := c.rank[key]
	return r, acquire, known
}

// walkFunc analyzes one function body (or function literal) over its
// CFG: the fixpoint runs silently to reach stable entry facts, then a
// reporting pass re-transfers each reachable block so every finding is
// emitted exactly once against the final facts. Nested literals are
// queued the same way with an empty held set.
func (c *checker) walkFunc(body *ast.BlockStmt) {
	cfg := framework.NewCFG(body)
	flow := &framework.Flow{
		CFG:   cfg,
		Entry: lockFact(nil),
		Join: func(a, b framework.Fact) framework.Fact {
			return lockFact(intersect(a.(lockFact), b.(lockFact)))
		},
		Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
			return lockFact(c.transfer(b, clone(in.(lockFact))))
		},
		Equal: func(a, b framework.Fact) bool {
			return sameLocks(a.(lockFact), b.(lockFact))
		},
	}
	c.silent = true
	res := flow.Solve()
	c.silent = false
	for _, blk := range cfg.Blocks {
		in, ok := res.In[blk].(lockFact)
		if !ok {
			continue // unreachable
		}
		c.transfer(blk, clone(in))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walkFunc(lit.Body)
			return false
		}
		return true
	})
}

// transfer applies one block's nodes, in order, to the held set.
func (c *checker) transfer(b *framework.Block, h []held) []held {
	for _, n := range b.Nodes {
		h = c.node(n, h)
	}
	return h
}

func (c *checker) node(n ast.Node, h []held) []held {
	switch n := n.(type) {
	case framework.DeferredCall:
		// The deferred call runs here on the exit chain: apply its lock
		// effect (defer mu.Unlock() releases now) without re-walking
		// argument expressions, which were evaluated at registration.
		if r, acquire, ok := c.lockTarget(n.CallExpr); ok && !acquire {
			return release(h, r)
		}
		return h
	case ast.Expr:
		// Branch conditions, switch tags, case expressions.
		return c.expr(n, h)
	case *ast.ExprStmt:
		return c.expr(n.X, h)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			h = c.expr(e, h)
		}
		for _, e := range n.Lhs {
			h = c.expr(e, h)
		}
		return h
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held until the exit chain —
		// no effect at registration; later barrier calls correctly see
		// it held. Argument expressions do evaluate now.
		for _, a := range n.Call.Args {
			h = c.expr(a, h)
		}
		return h
	case *ast.GoStmt:
		// The spawned goroutine holds nothing; its literal body is
		// analyzed separately by walkFunc. Arguments evaluate now.
		for _, a := range n.Call.Args {
			h = c.expr(a, h)
		}
		return h
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			h = c.expr(e, h)
		}
		return h
	case *ast.RangeStmt:
		return c.expr(n.X, h)
	case ast.Stmt:
		// Declarations, inc/dec, sends, if-inits: straight-line
		// statements whose embedded expressions may contain calls.
		ast.Inspect(n, func(nn ast.Node) bool {
			if _, ok := nn.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := nn.(ast.Expr); ok {
				h = c.expr(e, h)
				return false
			}
			return true
		})
		return h
	}
	return h
}

// expr processes every call in e against the held set, outside nested
// function literals, and returns the updated set.
func (c *checker) expr(e ast.Expr, h []held) []held {
	if e == nil {
		return h
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		h = c.call(call, h)
		return true
	})
	return h
}

// call applies one call's effect: acquire, release, or barrier check.
func (c *checker) call(call *ast.CallExpr, h []held) []held {
	if r, acquire, ok := c.lockTarget(call); ok {
		if acquire {
			c.checkAcquire(call.Pos(), r, h)
			return append(h, held{rank: r, pos: call.Pos()})
		}
		return release(h, r)
	}

	direct := c.isBarrierCall(call)
	indirect := false
	var via *types.Func
	if !direct {
		if fn := framework.CalleeFunc(c.pass.TypesInfo, call); fn != nil && c.reach[fn] {
			indirect, via = true, fn
		}
	}
	if direct || indirect {
		for _, hl := range h {
			name := c.m.Classes[hl.rank].Name
			if c.exempt[name] {
				continue
			}
			if direct {
				c.reportf(call.Pos(),
					"%s lock held across I/O call (acquired at %s); tier store locks are innermost and callbacks run lock-free",
					name, c.pass.Fset.Position(hl.pos))
			} else {
				c.reportf(call.Pos(),
					"%s lock held across call to %s, which reaches I/O (lock acquired at %s)",
					name, via.Name(), c.pass.Fset.Position(hl.pos))
			}
		}
	}
	return h
}

func (c *checker) checkAcquire(pos token.Pos, r int, h []held) {
	for _, hl := range h {
		switch {
		case hl.rank == r:
			c.reportf(pos,
				"acquires a second %s lock while one is already held (at %s); never more than one of each kind",
				c.m.Classes[r].Name, c.pass.Fset.Position(hl.pos))
		case hl.rank > r:
			c.reportf(pos,
				"acquires %s lock while holding %s lock (at %s); chain order is %s",
				c.m.Classes[r].Name, c.m.Classes[hl.rank].Name,
				c.pass.Fset.Position(hl.pos), c.chain())
		case c.m.Classes[hl.rank].ReleasedBefore:
			c.reportf(pos,
				"acquires %s lock while still holding %s lock (at %s); the %s lock must be released before taking any later lock",
				c.m.Classes[r].Name, c.m.Classes[hl.rank].Name,
				c.pass.Fset.Position(hl.pos), c.m.Classes[hl.rank].Name)
		}
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.silent {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) chain() string {
	names := make([]string, len(c.m.Classes))
	for i, cl := range c.m.Classes {
		names[i] = cl.Name
	}
	return strings.Join(names, " → ")
}

func clone(h []held) []held {
	return append([]held(nil), h...)
}

// release drops the most recent lock of rank r from the set.
func release(h []held, r int) []held {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].rank == r {
			return append(h[:i:i], h[i+1:]...)
		}
	}
	return h
}

// intersect keeps locks present (by rank) in both sets, preserving a's
// acquisition positions.
func intersect(a, b []held) []held {
	var out []held
	for _, ha := range a {
		for _, hb := range b {
			if ha.rank == hb.rank {
				out = append(out, ha)
				break
			}
		}
	}
	return out
}

// sameLocks compares two held sets as (rank, pos) multisets in order —
// the transfer is deterministic, so order-sensitive equality is enough
// to bound the fixpoint.
func sameLocks(a, b []held) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].rank != b[i].rank || a[i].pos != b[i].pos {
			return false
		}
	}
	return true
}
