// Package lockorder enforces ARCHITECTURE.md's lock-ordering chain.
//
// For every function it derives the set of manifest locks held at each
// statement by a conservative syntactic walk (Lock/RLock acquire,
// Unlock/RUnlock release, defer Unlock = held to function end,
// branches merged by intersection, bodies of `go` statements and
// function literals analyzed with an empty held set), then flags:
//
//   - acquiring a lock whose rank is ≤ the rank of any lock already
//     held (out-of-order, or a second lock of the same class);
//   - acquiring any lock while holding one from the released-between
//     prefix of the chain (ring / epoch stripe / dhm shard);
//   - holding a non-exempt lock across an I/O barrier — a call into
//     ioclient, a movement-interface method, the mover completion
//     callback, or any same-package function that transitively reaches
//     one.
//
// The analysis is intra-procedural with one package-local call-graph
// closure for barrier reachability; it does not track locks passed by
// pointer into helpers, which matches how the repo actually structures
// its critical sections.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Analyzer checks the repo against the default manifest.
var Analyzer = NewAnalyzer(Default())

// NewAnalyzer builds a lockorder analyzer for a manifest; fixtures use
// manifests over fixture-local types.
func NewAnalyzer(m Manifest) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "lockorder",
		Doc:  "enforce the ARCHITECTURE.md lock-ordering chain and the no-lock-across-I/O rule",
		Run:  func(pass *framework.Pass) error { return run(pass, m) },
	}
}

func run(pass *framework.Pass, m Manifest) error {
	// Inside a barrier package every call would count as a barrier and
	// its own store-handling would self-flag; the rule is about holding
	// locks *outside* the I/O client.
	for _, bp := range m.BarrierPkgs {
		if pass.Pkg != nil && pass.Pkg.Path() == bp {
			return nil
		}
	}
	c := &checker{pass: pass, m: m,
		rank:    make(map[FieldSel]int),
		exempt:  make(map[string]bool),
		barrier: make(map[string]bool),
		bpkgs:   make(map[string]bool),
	}
	for i, cl := range m.Classes {
		for _, f := range cl.Fields {
			c.rank[f] = i
		}
	}
	for _, n := range m.BarrierExempt {
		c.exempt[n] = true
	}
	for _, f := range m.BarrierFuncs {
		c.barrier[f] = true
	}
	for _, p := range m.BarrierPkgs {
		c.bpkgs[p] = true
	}
	c.buildReach()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.walkFunc(fd.Body)
		}
	}
	return nil
}

type held struct {
	rank int
	pos  token.Pos
}

type checker struct {
	pass    *framework.Pass
	m       Manifest
	rank    map[FieldSel]int
	exempt  map[string]bool
	barrier map[string]bool
	bpkgs   map[string]bool
	// reach marks package-local functions that transitively perform a
	// barrier call.
	reach map[*types.Func]bool
}

// buildReach computes which functions declared in this package reach an
// I/O barrier, by fixpoint over the package-local static call graph.
func (c *checker) buildReach() {
	direct := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c.isBarrierCall(call) {
					direct[fn] = true
					return true
				}
				if callee := framework.CalleeFunc(c.pass.TypesInfo, call); callee != nil &&
					callee.Pkg() == c.pass.Pkg {
					callees[fn] = append(callees[fn], callee)
				}
				return true
			})
		}
	}
	c.reach = direct
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if c.reach[fn] {
				continue
			}
			for _, callee := range cs {
				if c.reach[callee] {
					c.reach[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// isBarrierCall reports whether call is a direct I/O barrier.
func (c *checker) isBarrierCall(call *ast.CallExpr) bool {
	// Field-typed callback: m.done(mv, err).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			key := framework.TypeKey(framework.Named(s.Recv())) + "." + s.Obj().Name()
			if c.barrier[key] {
				return true
			}
		}
	}
	fn := framework.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && c.bpkgs[fn.Pkg().Path()] {
		return true
	}
	if recv := framework.ReceiverNamed(fn); recv != nil {
		if c.barrier[framework.TypeKey(recv)+"."+fn.Name()] {
			return true
		}
	}
	return false
}

// lockTarget resolves the manifest rank of the mutex a
// Lock/RLock/Unlock/RUnlock call operates on; ok=false when the
// receiver is not a manifest lock field.
func (c *checker) lockTarget(call *ast.CallExpr) (rank int, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return 0, false, false
	}
	field, isField := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isField {
		return 0, false, false
	}
	fs, fok := c.pass.TypesInfo.Selections[field]
	if !fok || fs.Kind() != types.FieldVal {
		return 0, false, false
	}
	key := FieldSel{
		Type:  framework.TypeKey(framework.Named(fs.Recv())),
		Field: fs.Obj().Name(),
	}
	r, known := c.rank[key]
	return r, acquire, known
}

// walkFunc analyzes one function body (or function literal) starting
// with an empty held set, and queues nested literals the same way.
func (c *checker) walkFunc(body *ast.BlockStmt) {
	h, _ := c.block(body, nil)
	_ = h
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walkFunc(lit.Body)
			return false
		}
		return true
	})
}

func (c *checker) block(b *ast.BlockStmt, h []held) ([]held, bool) {
	return c.stmts(b.List, h)
}

func (c *checker) stmts(list []ast.Stmt, h []held) ([]held, bool) {
	for _, s := range list {
		var term bool
		h, term = c.stmt(s, h)
		if term {
			return h, true
		}
	}
	return h, false
}

func (c *checker) stmt(s ast.Stmt, h []held) ([]held, bool) {
	switch s := s.(type) {
	case nil:
		return h, false
	case *ast.ExprStmt:
		return c.expr(s.X, h), isPanic(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			h = c.expr(e, h)
		}
		for _, e := range s.Lhs {
			h = c.expr(e, h)
		}
		return h, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				h = c.expr(e, h)
				return false
			}
			return true
		})
		return h, false
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function end —
		// no state change; later barrier calls correctly see it held.
		// Other deferred work runs at exit; skip its calls but still
		// resolve locks *inside argument expressions* evaluated now.
		for _, a := range s.Call.Args {
			h = c.expr(a, h)
		}
		return h, false
	case *ast.GoStmt:
		// The spawned goroutine holds nothing; its literal body is
		// analyzed separately by walkFunc. Arguments evaluate now.
		for _, a := range s.Call.Args {
			h = c.expr(a, h)
		}
		return h, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			h = c.expr(e, h)
		}
		return h, true
	case *ast.BranchStmt:
		return h, true
	case *ast.BlockStmt:
		return c.block(s, h)
	case *ast.IfStmt:
		if s.Init != nil {
			h, _ = c.stmt(s.Init, h)
		}
		h = c.expr(s.Cond, h)
		hThen, termThen := c.block(s.Body, clone(h))
		hElse, termElse := clone(h), false
		if s.Else != nil {
			hElse, termElse = c.stmt(s.Else, clone(h))
		}
		switch {
		case termThen && termElse:
			return h, false
		case termThen:
			return hElse, false
		case termElse:
			return hThen, false
		default:
			return intersect(hThen, hElse), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			h, _ = c.stmt(s.Init, h)
		}
		if s.Cond != nil {
			h = c.expr(s.Cond, h)
		}
		c.block(s.Body, clone(h))
		return h, false
	case *ast.RangeStmt:
		h = c.expr(s.X, h)
		c.block(s.Body, clone(h))
		return h, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, h)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, h)
	default:
		return h, false
	}
}

// branches merges switch/select case bodies by intersection, like if.
func (c *checker) branches(s ast.Stmt, h []held) ([]held, bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			h, _ = c.stmt(s.Init, h)
		}
		if s.Tag != nil {
			h = c.expr(s.Tag, h)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var outs [][]held
	hasDefault := false
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			list = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				c.stmt(cl.Comm, clone(h))
			}
			list = cl.Body
		}
		if out, term := c.stmts(list, clone(h)); !term {
			outs = append(outs, out)
		}
	}
	// A switch without default can fall through unchanged.
	if !hasDefault {
		outs = append(outs, h)
	}
	if len(outs) == 0 {
		return h, false
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	return merged, false
}

// expr processes every call in e against the held set, outside nested
// function literals, and returns the updated set.
func (c *checker) expr(e ast.Expr, h []held) []held {
	if e == nil {
		return h
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		h = c.call(call, h)
		return true
	})
	return h
}

// call applies one call's effect: acquire, release, or barrier check.
func (c *checker) call(call *ast.CallExpr, h []held) []held {
	if r, acquire, ok := c.lockTarget(call); ok {
		if acquire {
			c.checkAcquire(call.Pos(), r, h)
			return append(h, held{rank: r, pos: call.Pos()})
		}
		for i := len(h) - 1; i >= 0; i-- {
			if h[i].rank == r {
				return append(h[:i:i], h[i+1:]...)
			}
		}
		return h
	}

	direct := c.isBarrierCall(call)
	indirect := false
	var via *types.Func
	if !direct {
		if fn := framework.CalleeFunc(c.pass.TypesInfo, call); fn != nil && c.reach[fn] {
			indirect, via = true, fn
		}
	}
	if direct || indirect {
		for _, hl := range h {
			name := c.m.Classes[hl.rank].Name
			if c.exempt[name] {
				continue
			}
			if direct {
				c.pass.Reportf(call.Pos(),
					"%s lock held across I/O call (acquired at %s); tier store locks are innermost and callbacks run lock-free",
					name, c.pass.Fset.Position(hl.pos))
			} else {
				c.pass.Reportf(call.Pos(),
					"%s lock held across call to %s, which reaches I/O (lock acquired at %s)",
					name, via.Name(), c.pass.Fset.Position(hl.pos))
			}
		}
	}
	return h
}

func (c *checker) checkAcquire(pos token.Pos, r int, h []held) {
	for _, hl := range h {
		switch {
		case hl.rank == r:
			c.pass.Reportf(pos,
				"acquires a second %s lock while one is already held (at %s); never more than one of each kind",
				c.m.Classes[r].Name, c.pass.Fset.Position(hl.pos))
		case hl.rank > r:
			c.pass.Reportf(pos,
				"acquires %s lock while holding %s lock (at %s); chain order is %s",
				c.m.Classes[r].Name, c.m.Classes[hl.rank].Name,
				c.pass.Fset.Position(hl.pos), c.chain())
		case c.m.Classes[hl.rank].ReleasedBefore:
			c.pass.Reportf(pos,
				"acquires %s lock while still holding %s lock (at %s); the %s lock must be released before taking any later lock",
				c.m.Classes[r].Name, c.m.Classes[hl.rank].Name,
				c.pass.Fset.Position(hl.pos), c.m.Classes[hl.rank].Name)
		}
	}
}

func (c *checker) chain() string {
	names := make([]string, len(c.m.Classes))
	for i, cl := range c.m.Classes {
		names[i] = cl.Name
	}
	return strings.Join(names, " → ")
}

func clone(h []held) []held {
	return append([]held(nil), h...)
}

// intersect keeps locks present (by rank) in both sets, preserving a's
// acquisition positions.
func intersect(a, b []held) []held {
	var out []held
	for _, ha := range a {
		for _, hb := range b {
			if ha.rank == hb.rank {
				out = append(out, ha)
				break
			}
		}
	}
	return out
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
