package lockorder

import (
	"fmt"
	"strings"
)

// FieldSel names one mutex field: the owning named type (as
// framework.TypeKey renders it, "pkgpath.Type") and the field name.
type FieldSel struct {
	Type  string
	Field string
}

// Class is one rank in the lock-ordering chain. Several concrete fields
// may share a class (none do today, but fixtures use it).
type Class struct {
	// Name matches the phrase used in ARCHITECTURE.md's chain.
	Name   string
	Fields []FieldSel
	// ReleasedBefore marks the strictly released-between prefix of the
	// chain: this lock must be released before acquiring ANY later
	// lock, not merely acquired in order.
	ReleasedBefore bool
}

// Manifest is the machine-readable form of ARCHITECTURE.md's
// "Lock ordering" section. TestManifestMatchesArchitecture asserts that
// Default() and the prose stay in sync.
type Manifest struct {
	// Classes in ascending rank (outermost first).
	Classes []Class
	// BarrierPkgs: any call into these packages is device I/O; no
	// manifest lock (minus BarrierExempt) may be held across it.
	BarrierPkgs []string
	// BarrierFuncs: individual callbacks/interface methods that are
	// I/O or must run lock-free, as "pkgpath.Type.Name".
	BarrierFuncs []string
	// BarrierExempt: class names legitimately held across barriers.
	// The sync engine's decision pass holds runMu across execute() by
	// design (it is the pass serialization lock, not a data lock).
	BarrierExempt []string
}

// Default returns the manifest for this repo's chain:
//
//	gateway mu → (released) → ring → (released) → epoch → (released) →
//	membership mu → (released) → dhm → (released) → cluster fetch mu →
//	(released) → engine runMu → engine mu → mover mu → tier store mutex
func Default() Manifest {
	return Manifest{
		Classes: []Class{
			{Name: "gateway", ReleasedBefore: true,
				Fields: []FieldSel{{"hfetch/internal/gateway.Gateway", "mu"}}},
			{Name: "ring", ReleasedBefore: true,
				Fields: []FieldSel{{"hfetch/internal/events.Queue", "mu"}}},
			{Name: "epoch", ReleasedBefore: true,
				Fields: []FieldSel{{"hfetch/internal/core/auditor.epochStripe", "mu"}}},
			{Name: "membership", ReleasedBefore: true,
				Fields: []FieldSel{{"hfetch/internal/cluster.Membership", "mu"}}},
			{Name: "dhm", ReleasedBefore: true,
				Fields: []FieldSel{{"hfetch/internal/dhm.shard", "mu"}}},
			{Name: "cluster-fetch", ReleasedBefore: true,
				Fields: []FieldSel{{"hfetch/internal/cluster.Fetcher", "mu"}}},
			{Name: "engine-run",
				Fields: []FieldSel{{"hfetch/internal/core/placement.Engine", "runMu"}}},
			{Name: "engine-mu",
				Fields: []FieldSel{{"hfetch/internal/core/placement.Engine", "mu"}}},
			{Name: "mover",
				Fields: []FieldSel{{"hfetch/internal/core/mover.Mover", "mu"}}},
			{Name: "store",
				Fields: []FieldSel{{"hfetch/internal/tiers.Store", "mu"}}},
		},
		BarrierPkgs: []string{"hfetch/internal/core/ioclient"},
		BarrierFuncs: []string{
			// The mover's completion callback must run lock-free.
			"hfetch/internal/core/mover.Mover.done",
			// Movement interfaces are implemented by ioclient.
			"hfetch/internal/core/placement.Mover.Fetch",
			"hfetch/internal/core/placement.Mover.Transfer",
			"hfetch/internal/core/placement.Mover.Evict",
			"hfetch/internal/core/mover.Executor.Fetch",
			"hfetch/internal/core/mover.Executor.Transfer",
			"hfetch/internal/core/mover.Executor.Evict",
			"hfetch/internal/core/mover.BatchFetcher.FetchMany",
		},
		BarrierExempt: []string{"engine-run"},
	}
}

// ChainEntry is one parsed element of the ARCHITECTURE.md chain line.
type ChainEntry struct {
	Class          string
	ReleasedBefore bool
}

// chainPhrases maps the prose phrase in the chain to a class name.
var chainPhrases = map[string]string{
	"gateway mu":       "gateway",
	"ring mutex":       "ring",
	"epoch stripe":     "epoch",
	"membership mu":    "membership",
	"dhm shard":        "dhm",
	"cluster fetch mu": "cluster-fetch",
	"engine runMu":     "engine-run",
	"engine mu":        "engine-mu",
	"mover mu":         "mover",
	"tier store mutex": "store",
}

// ParseArchitectureChain extracts the lock chain from ARCHITECTURE.md:
// the first "→"-joined line inside the "## Lock ordering" section.
// "(released)" separators set ReleasedBefore on the preceding entry.
func ParseArchitectureChain(md []byte) ([]ChainEntry, error) {
	lines := strings.Split(string(md), "\n")
	inSection := false
	for _, line := range lines {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Lock ordering")
			continue
		}
		if !inSection || !strings.Contains(line, "→") {
			continue
		}
		var out []ChainEntry
		for _, part := range strings.Split(line, "→") {
			part = strings.TrimSpace(part)
			if part == "(released)" {
				if len(out) == 0 {
					return nil, fmt.Errorf("chain starts with (released)")
				}
				out[len(out)-1].ReleasedBefore = true
				continue
			}
			name, ok := chainPhrases[part]
			if !ok {
				return nil, fmt.Errorf("unknown lock phrase %q in chain", part)
			}
			out = append(out, ChainEntry{Class: name})
		}
		return out, nil
	}
	return nil, fmt.Errorf("no lock chain found under '## Lock ordering'")
}
