package lockorder

import (
	"go/types"
	"os"
	"strings"
	"testing"

	"hfetch/internal/analysis/analysistest"
	"hfetch/internal/analysis/framework"
)

const fixturePkg = "hfetch/internal/analysis/lockorder/testdata/src/lockfixture"

func fixtureManifest() Manifest {
	return Manifest{
		Classes: []Class{
			{Name: "ring", ReleasedBefore: true,
				Fields: []FieldSel{{fixturePkg + ".Ring", "mu"}}},
			{Name: "shard",
				Fields: []FieldSel{{fixturePkg + ".Shard", "mu"}}},
			{Name: "engine-run",
				Fields: []FieldSel{{fixturePkg + ".Engine", "runMu"}}},
			{Name: "engine-mu",
				Fields: []FieldSel{{fixturePkg + ".Engine", "mu"}}},
			{Name: "store",
				Fields: []FieldSel{{fixturePkg + ".Store", "mu"}}},
		},
		BarrierFuncs:  []string{fixturePkg + ".IO.Write"},
		BarrierExempt: []string{"engine-run"},
	}
}

func TestLockorderFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/lockfixture", NewAnalyzer(fixtureManifest()))
}

func TestLockorderClean(t *testing.T) {
	cleanPkg := "hfetch/internal/analysis/lockorder/testdata/src/lockclean"
	m := fixtureManifest()
	m.Classes[0].Fields = []FieldSel{{cleanPkg + ".Ring", "mu"}}
	m.Classes[4].Fields = []FieldSel{{cleanPkg + ".Store", "mu"}}
	m.BarrierFuncs = []string{cleanPkg + ".IO.Write"}
	analysistest.NoFindings(t, "./testdata/src/lockclean", NewAnalyzer(m))
}

// TestManifestMatchesArchitecture pins the machine-readable manifest to
// the prose chain in ARCHITECTURE.md: same classes, same order, same
// released-between prefix. Editing one without the other fails here.
func TestManifestMatchesArchitecture(t *testing.T) {
	md, err := os.ReadFile("../../../ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("read ARCHITECTURE.md: %v", err)
	}
	chain, err := ParseArchitectureChain(md)
	if err != nil {
		t.Fatalf("parse chain: %v", err)
	}
	m := Default()
	if len(chain) != len(m.Classes) {
		t.Fatalf("ARCHITECTURE.md chain has %d locks, manifest has %d classes", len(chain), len(m.Classes))
	}
	for i, e := range chain {
		c := m.Classes[i]
		if e.Class != c.Name {
			t.Errorf("rank %d: ARCHITECTURE.md says %q, manifest says %q", i, e.Class, c.Name)
		}
		if e.ReleasedBefore != c.ReleasedBefore {
			t.Errorf("rank %d (%s): released-between is %v in ARCHITECTURE.md, %v in manifest",
				i, e.Class, e.ReleasedBefore, c.ReleasedBefore)
		}
	}
}

// TestDefaultManifestFieldsExist loads the real packages and asserts
// every manifest field selector resolves to an actual mutex field, so a
// rename cannot silently turn the analyzer off.
func TestDefaultManifestFieldsExist(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module")
	}
	m := Default()
	pkgSet := make(map[string]bool)
	for _, c := range m.Classes {
		for _, f := range c.Fields {
			pkgSet[f.Type[:strings.LastIndex(f.Type, ".")]] = true
		}
	}
	var patterns []string
	for p := range pkgSet {
		patterns = append(patterns, p)
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		t.Fatalf("load manifest packages: %v", err)
	}
	byPath := make(map[string]*framework.Package)
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	for _, c := range m.Classes {
		for _, f := range c.Fields {
			dot := strings.LastIndex(f.Type, ".")
			pkgPath, typeName := f.Type[:dot], f.Type[dot+1:]
			pkg := byPath[pkgPath]
			if pkg == nil || pkg.Types == nil {
				t.Errorf("class %s: package %s not loaded", c.Name, pkgPath)
				continue
			}
			obj := pkg.Types.Scope().Lookup(typeName)
			if obj == nil {
				t.Errorf("class %s: type %s not found in %s", c.Name, typeName, pkgPath)
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				t.Errorf("class %s: %s is not a struct", c.Name, f.Type)
				continue
			}
			found := false
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == f.Field {
					key := framework.TypeKey(framework.Named(st.Field(i).Type()))
					if key != "sync.Mutex" && key != "sync.RWMutex" {
						t.Errorf("class %s: %s.%s is %s, not a mutex", c.Name, f.Type, f.Field, key)
					}
					found = true
				}
			}
			if !found {
				t.Errorf("class %s: field %s.%s does not exist", c.Name, f.Type, f.Field)
			}
		}
	}
}
