// Package lockclean is the lockorder clean case: correctly ordered
// acquisitions, released-between discipline, and I/O outside all locks.
package lockclean

import "sync"

type Ring struct{ mu sync.Mutex }

type Store struct{ mu sync.Mutex }

type IO interface{ Write() error }

func ordered(r *Ring, st *Store) {
	r.mu.Lock()
	r.mu.Unlock()
	st.mu.Lock()
	st.mu.Unlock()
}

func ioOutsideLocks(st *Store, io IO) error {
	st.mu.Lock()
	st.mu.Unlock()
	return io.Write()
}
