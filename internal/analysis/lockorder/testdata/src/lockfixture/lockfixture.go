// Package lockfixture exercises the lockorder analyzer: the test
// manifest ranks Ring < Shard < Engine.runMu < Engine.mu < Store, marks
// Ring as released-between, treats IO.Write as an I/O barrier, and
// exempts engine-run from the barrier rule.
package lockfixture

import "sync"

type Ring struct{ mu sync.Mutex }

type Shard struct{ mu sync.RWMutex }

type Engine struct {
	runMu sync.Mutex
	mu    sync.Mutex
}

type Store struct{ mu sync.Mutex }

type IO interface{ Write() error }

// outOfOrder takes a later lock first.
func outOfOrder(st *Store, e *Engine) {
	st.mu.Lock()
	e.mu.Lock() // want `acquires engine-mu lock while holding store lock`
	e.mu.Unlock()
	st.mu.Unlock()
}

// doubleRing takes two locks of the same class.
func doubleRing(a, b *Ring) {
	a.mu.Lock()
	b.mu.Lock() // want `acquires a second ring lock`
	b.mu.Unlock()
	a.mu.Unlock()
}

// ringNotReleased holds the released-between ring across a shard
// acquisition, even though shard is later in the chain.
func ringNotReleased(r *Ring, s *Shard) {
	r.mu.Lock()
	s.mu.Lock() // want `ring lock must be released before taking any later lock`
	s.mu.Unlock()
	r.mu.Unlock()
}

// heldAcrossIO performs device I/O under the store lock.
func heldAcrossIO(st *Store, io IO) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return io.Write() // want `store lock held across I/O call`
}

// reachesIO holds a lock across a helper that transitively does I/O.
func reachesIO(e *Engine, io IO) {
	e.mu.Lock()
	helper(io) // want `engine-mu lock held across call to helper, which reaches I/O`
	e.mu.Unlock()
}

func helper(io IO) {
	io.Write()
}

// exemptAcrossIO holds the exempt pass-serialization lock across I/O;
// the manifest allows it.
func exemptAcrossIO(e *Engine, io IO) error {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	return io.Write()
}

// unlockThenReturn releases on the early-exit branch; the fall-through
// path still holds the lock legitimately.
func unlockThenReturn(r *Ring, s *Shard, empty bool) {
	r.mu.Lock()
	if empty {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// goroutineStartsFresh: locks held by the spawner are not held by the
// goroutine it spawns.
func goroutineStartsFresh(st *Store, e *Engine) {
	st.mu.Lock()
	go func() {
		e.mu.Lock()
		e.mu.Unlock()
	}()
	st.mu.Unlock()
}

// allowed is the same violation as outOfOrder but deliberately waived.
func allowed(st *Store, e *Engine) {
	st.mu.Lock()
	//lint:allow lockorder fixture demonstrates a waived ordering violation
	e.mu.Lock()
	e.mu.Unlock()
	st.mu.Unlock()
}
