// Package nilsafe enforces the telemetry nil-safety contract from both
// sides.
//
// Rule A — inside the telemetry package: every exported method with a
// pointer receiver on a nil-safe type (Registry, Lifecycle, Counter,
// Gauge, Histogram, SpanLog, AccessLog, CounterVec, HistVec) must
// establish its nil guard in the first statement: a `recv == nil`
// comparison (guard-and-return or `return recv != nil`), or pure
// delegation to another method of the same receiver. This is what makes
// a disabled (nil) registry free to call from anywhere.
//
// Rule B — outside the telemetry package: a method call on a gated
// type (*telemetry.Lifecycle, *telemetry.Watchdog) must sit behind the
// established call-site gate. The lifecycle tracer is fetched through
// an atomic pointer and the idiom skips argument construction when
// tracing is off; the watchdog is nil when disabled, and gating keeps
// probe closures from being built for nothing:
//
//	if lc := reg.Lifecycle(); lc != nil { lc.OnReadHit(...) }
//
// or an early `if lc == nil { return }` guard earlier in the function.
// Calling through the accessor directly (reg.Lifecycle().OnX(...)) is
// always flagged.
package nilsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"hfetch/internal/analysis/framework"
)

// Config parameterizes the analyzer so fixtures can target
// fixture-local types.
type Config struct {
	// Pkg is the package whose exported methods Rule A covers.
	Pkg string
	// NilSafe are type names in Pkg whose pointer methods must begin
	// with the nil guard.
	NilSafe []string
	// Gated are type names in Pkg whose methods must be nil-gated at
	// call sites outside Pkg (Rule B).
	Gated []string
}

// DefaultConfig covers hfetch/internal/telemetry.
func DefaultConfig() Config {
	return Config{
		Pkg: "hfetch/internal/telemetry",
		NilSafe: []string{
			"Registry", "Lifecycle", "Counter", "Gauge", "Histogram",
			"SpanLog", "AccessLog", "CounterVec", "HistVec", "Watchdog",
		},
		Gated: []string{"Lifecycle", "Watchdog"},
	}
}

// Analyzer checks the repo against DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

// NewAnalyzer builds a nilsafe analyzer for cfg.
func NewAnalyzer(cfg Config) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "nilsafe",
		Doc:  "enforce telemetry nil-receiver guards and call-site lifecycle gating",
		Run:  func(pass *framework.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *framework.Pass, cfg Config) error {
	if pass.Pkg == nil {
		return nil
	}
	nilSafe := make(map[string]bool, len(cfg.NilSafe))
	for _, n := range cfg.NilSafe {
		nilSafe[cfg.Pkg+"."+n] = true
	}
	gated := make(map[string]bool, len(cfg.Gated))
	for _, n := range cfg.Gated {
		gated[cfg.Pkg+"."+n] = true
	}
	if pass.Pkg.Path() == cfg.Pkg {
		ruleA(pass, nilSafe)
		return nil
	}
	ruleB(pass, gated)
	return nil
}

// --- Rule A -----------------------------------------------------------

func ruleA(pass *framework.Pass, nilSafe map[string]bool) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if _, isPtr := types.Unalias(sig.Recv().Type()).(*types.Pointer); !isPtr {
				continue
			}
			recv := framework.ReceiverNamed(fn)
			if !nilSafe[framework.TypeKey(recv)] {
				continue
			}
			recvObj := recvVar(pass, fd)
			if recvObj == nil {
				// Unnamed receiver cannot be nil-checked.
				pass.Reportf(fd.Name.Pos(),
					"exported method %s.%s on nil-safe type has unnamed receiver; name it and add the nil guard",
					recv.Obj().Name(), fd.Name.Name)
				continue
			}
			if !guardsBeforeUse(pass, fd.Body, recvObj) {
				pass.Reportf(fd.Name.Pos(),
					"exported method %s.%s must nil-check the receiver (if %s == nil) before using it, or delegate to a guarded method",
					recv.Obj().Name(), fd.Name.Name, recvObj.Name())
			}
		}
	}
}

func recvVar(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// guardsBeforeUse walks the body's top-level statements in order: the
// receiver's nil guard (any nil-comparison of it) must appear no later
// than its first other use. A statement that uses the receiver only as
// the direct callee of its own methods counts as delegation — the
// callee carries the guard (e.g. `r.Snapshot().WriteText(w)`).
func guardsBeforeUse(pass *framework.Pass, body *ast.BlockStmt, recv types.Object) bool {
	for _, s := range body.List {
		if containsNilCompare(pass, s, recv) {
			return true
		}
		if !usesObj(pass, s, recv) {
			continue
		}
		return delegates(pass, s, recv)
	}
	// Receiver never dereferenced at all — trivially nil-safe.
	return true
}

func usesObj(pass *framework.Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// delegates reports whether every use of recv in s is as the immediate
// receiver of a method call (recv.M(...)), so the called method's own
// guard covers it.
func delegates(pass *framework.Pass, s ast.Stmt, recv types.Object) bool {
	ok := true
	ast.Inspect(s, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			if id, isID := n.(*ast.Ident); isID && pass.TypesInfo.Uses[id] == recv {
				ok = false // bare use outside a recv.M(...) shape
			}
			return ok
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == recv {
				if _, mok := pass.TypesInfo.Selections[sel]; mok {
					// recv.M(args): skip the receiver ident, check args.
					for _, a := range call.Args {
						ast.Inspect(a, func(n ast.Node) bool {
							if id, isID := n.(*ast.Ident); isID && pass.TypesInfo.Uses[id] == recv {
								ok = false
							}
							return ok
						})
					}
					return false
				}
			}
		}
		return ok
	})
	return ok
}

func containsNilCompare(pass *framework.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return !found
		}
		if isObjIdent(pass, be.X, obj) && isNil(pass, be.Y) ||
			isObjIdent(pass, be.Y, obj) && isNil(pass, be.X) {
			found = true
		}
		return !found
	})
	return found
}

func isObjIdent(pass *framework.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isNil(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// --- Rule B -----------------------------------------------------------

func ruleB(pass *framework.Pass, gated map[string]bool) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGatedCalls(pass, fd, gated)
		}
	}
}

func checkGatedCalls(pass *framework.Pass, fd *ast.FuncDecl, gated map[string]bool) {
	// earlyGuards: objects with a terminating `if obj == nil { return }`
	// guard, keyed to the guard's end position.
	type guard struct {
		obj types.Object
		end token.Pos
	}
	var earlyGuards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !terminates(ifs.Body) {
			return true
		}
		be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		var idExpr ast.Expr
		switch {
		case isNil(pass, be.Y):
			idExpr = be.X
		case isNil(pass, be.X):
			idExpr = be.Y
		default:
			return true
		}
		if id, ok := ast.Unparen(idExpr).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				earlyGuards = append(earlyGuards, guard{obj: obj, end: ifs.End()})
			}
		}
		return true
	})

	gatedHere := func(stack []ast.Node, obj types.Object, at token.Pos) bool {
		for _, g := range earlyGuards {
			if g.obj == obj && g.end <= at {
				return true
			}
		}
		for _, n := range stack {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				continue
			}
			ok2 := false
			ast.Inspect(ifs.Cond, func(n ast.Node) bool {
				be, isBin := n.(*ast.BinaryExpr)
				if !isBin || be.Op != token.NEQ {
					return !ok2
				}
				if isObjIdent(pass, be.X, obj) && isNil(pass, be.Y) ||
					isObjIdent(pass, be.Y, obj) && isNil(pass, be.X) {
					ok2 = true
				}
				return !ok2
			})
			if ok2 {
				return true
			}
		}
		return false
	}

	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
					recv := framework.Named(s.Recv())
					if recv != nil && gated[framework.TypeKey(recv)] {
						switch x := ast.Unparen(sel.X).(type) {
						case *ast.Ident:
							obj := pass.TypesInfo.Uses[x]
							if obj == nil || !gatedHere(stack, obj, call.Pos()) {
								pass.Reportf(call.Pos(),
									"call to %s.%s outside a nil gate; use `if %s != nil { ... }` or an early `if %s == nil { return }`",
									recv.Obj().Name(), sel.Sel.Name, x.Name, x.Name)
							}
						default:
							pass.Reportf(call.Pos(),
								"call to %s.%s on an unbound expression; bind the tracer first: if lc := reg.Lifecycle(); lc != nil { ... }",
								recv.Obj().Name(), sel.Sel.Name)
						}
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
