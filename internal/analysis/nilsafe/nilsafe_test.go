package nilsafe

import (
	"strings"
	"testing"

	"hfetch/internal/analysis/analysistest"
	"hfetch/internal/analysis/framework"
)

func fixtureConfig() Config {
	return Config{
		Pkg:     "hfetch/internal/analysis/nilsafe/testdata/src/nilfixture",
		NilSafe: []string{"Reg", "Tracer", "Guard"},
		Gated:   []string{"Tracer", "Guard"},
	}
}

func TestRuleAFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/nilfixture", NewAnalyzer(fixtureConfig()))
}

func TestRuleBFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/nilcaller", NewAnalyzer(fixtureConfig()))
}

// TestBareWaiverRejected proves the annotation grammar end to end: a
// reason-less //lint:allow produces an allowsyntax finding AND fails to
// suppress the nilsafe finding it names.
func TestBareWaiverRejected(t *testing.T) {
	pkgs, err := framework.Load(".", "./testdata/src/allowbare")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := framework.Run(pkgs, []*framework.Analyzer{NewAnalyzer(fixtureConfig())})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var sawMalformed, sawUnsuppressed bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "allowsyntax" && strings.Contains(d.Message, "malformed lint:allow"):
			sawMalformed = true
		case d.Analyzer == "nilsafe" && strings.Contains(d.Message, "outside a nil gate"):
			sawUnsuppressed = true
		default:
			t.Errorf("unexpected finding [%s]: %s", d.Analyzer, d.Message)
		}
	}
	if !sawMalformed {
		t.Error("bare //lint:allow not reported as malformed")
	}
	if !sawUnsuppressed {
		t.Error("bare //lint:allow wrongly suppressed the nilsafe finding")
	}
}

// TestRealTelemetryClean runs the default config against the real
// telemetry package: the contract the rest of the repo relies on.
func TestRealTelemetryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real telemetry package")
	}
	analysistest.NoFindings(t, "hfetch/internal/telemetry", Analyzer)
}
