package nilsafe

import (
	"testing"

	"hfetch/internal/analysis/analysistest"
)

func fixtureConfig() Config {
	return Config{
		Pkg:     "hfetch/internal/analysis/nilsafe/testdata/src/nilfixture",
		NilSafe: []string{"Reg", "Tracer", "Guard"},
		Gated:   []string{"Tracer", "Guard"},
	}
}

func TestRuleAFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/nilfixture", NewAnalyzer(fixtureConfig()))
}

func TestRuleBFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/nilcaller", NewAnalyzer(fixtureConfig()))
}

// TestRealTelemetryClean runs the default config against the real
// telemetry package: the contract the rest of the repo relies on.
func TestRealTelemetryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real telemetry package")
	}
	analysistest.NoFindings(t, "hfetch/internal/telemetry", Analyzer)
}
