// Package nilfixture stands in for the telemetry package in the
// nilsafe fixtures: Reg and Tracer are configured as nil-safe types, so
// every exported pointer method must establish its nil guard (Rule A).
package nilfixture

type Reg struct{ n int64 }

type Tracer struct{ n int64 }

// Good guards first.
func (r *Reg) Good() {
	if r == nil {
		return
	}
	r.n++
}

// GoodLate declares its zero return value before the guard.
func (r *Reg) GoodLate() int64 {
	var out int64
	if r == nil {
		return out
	}
	return r.n
}

// Enabled uses the return-form guard.
func (r *Reg) Enabled() bool { return r != nil }

// Delegating leans on Good's guard.
func (r *Reg) Delegating() {
	r.Good()
}

// Bad dereferences an unguarded receiver.
func (r *Reg) Bad() { // want `exported method Reg.Bad must nil-check the receiver`
	r.n++
}

// Tracer returns the gated tracer (nil when disabled).
func (r *Reg) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return &Tracer{}
}

func (t *Tracer) On() {
	if t == nil {
		return
	}
	t.n++
}

// Waived is Bad with a deliberate waiver.
//
//lint:allow nilsafe fixture demonstrates a waived missing guard
func (t *Tracer) Waived() {
	t.n++
}

// unexported methods are out of scope.
func (t *Tracer) bump() {
	t.n++
}

// Guard stands in for the stall watchdog: a second gated type, nil
// when the feature is disabled.
type Guard struct{ trips int64 }

// Guard returns the gated watchdog stand-in (nil when disabled).
func (r *Reg) Guard() *Guard {
	if r == nil {
		return nil
	}
	return &Guard{}
}

// Arm guards first, like every nil-safe method.
func (g *Guard) Arm() {
	if g == nil {
		return
	}
	g.trips++
}

// BadArm dereferences an unguarded receiver.
func (g *Guard) BadArm() { // want `exported method Guard.BadArm must nil-check the receiver`
	g.trips++
}

// Probe mirrors the watchdog's closure-registration surface; callers
// must not build the closure when the guard is nil.
func (g *Guard) Probe(fn func() int64) {
	if g == nil {
		return
	}
	g.trips += fn()
}
