// Package allowbare proves the waiver grammar: a //lint:allow with no
// reason is itself an allowsyntax finding, and it does NOT suppress the
// finding it names — so a bare annotation can never silently disable a
// check. A dedicated fixture (rather than a // want line in nilcaller)
// because the malformed-annotation diagnostic lands on the comment's
// own line, where a want comment cannot sit.
package allowbare

import "hfetch/internal/analysis/nilsafe/testdata/src/nilfixture"

func bare(r *nilfixture.Reg) {
	tr := r.Tracer()
	//lint:allow nilsafe
	tr.On()
}
