// Package nilcaller exercises nilsafe Rule B: method calls on the gated
// Tracer type must sit behind a nil gate at the call site.
package nilcaller

import "hfetch/internal/analysis/nilsafe/testdata/src/nilfixture"

func ungated(r *nilfixture.Reg) {
	tr := r.Tracer()
	tr.On() // want `call to Tracer.On outside a nil gate`
}

func unbound(r *nilfixture.Reg) {
	r.Tracer().On() // want `call to Tracer.On on an unbound expression`
}

func gatedIf(r *nilfixture.Reg) {
	if tr := r.Tracer(); tr != nil {
		tr.On()
	}
}

func gatedEarly(r *nilfixture.Reg) {
	tr := r.Tracer()
	if tr == nil {
		return
	}
	tr.On()
}

func gatedParam(tr *nilfixture.Tracer) {
	if tr == nil {
		return
	}
	tr.On()
}

func waived(r *nilfixture.Reg) {
	tr := r.Tracer()
	//lint:allow nilsafe fixture demonstrates a waived ungated call
	tr.On()
}

// Reg is nil-safe but not gated: direct calls are fine.
func regDirect(r *nilfixture.Reg) {
	r.Good()
}

// Guard is gated too: the same call-site rules apply to the second
// entry in the gated-type list.
func guardUngated(r *nilfixture.Reg) {
	g := r.Guard()
	g.Arm() // want `call to Guard.Arm outside a nil gate`
}

func guardUnbound(r *nilfixture.Reg) {
	r.Guard().Arm() // want `call to Guard.Arm on an unbound expression`
}

func guardGated(r *nilfixture.Reg) {
	if g := r.Guard(); g != nil {
		g.Arm()
	}
}

func guardGatedEarly(g *nilfixture.Guard) {
	if g == nil {
		return
	}
	g.Arm()
}

// guardProbeGated is the watchdog probe idiom: the closure is only
// built inside the gate, so a disabled watchdog costs one branch.
func guardProbeGated(r *nilfixture.Reg) {
	if g := r.Guard(); g != nil {
		g.Probe(func() int64 { return 1 })
	}
}

// guardProbeUngated builds the closure without a gate.
func guardProbeUngated(r *nilfixture.Reg) {
	g := r.Guard()
	g.Probe(func() int64 { return 1 }) // want `call to Guard.Probe outside a nil gate`
}

// guardManyCalls: one early gate covers every later call in the
// function body.
func guardManyCalls(r *nilfixture.Reg) {
	g := r.Guard()
	if g == nil {
		return
	}
	g.Arm()
	g.Probe(func() int64 { return 2 })
	g.Arm()
}
