package atomicmix

import (
	"testing"

	"hfetch/internal/analysis/analysistest"
)

func TestAtomicmixFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/atomfixture", Analyzer)
}

func TestAtomicmixClean(t *testing.T) {
	analysistest.NoFindings(t, "./testdata/src/atomclean", Analyzer)
}
