// Package atomicmix flags variables and struct fields that are accessed
// both through sync/atomic functions and through plain reads/writes in
// the same package — the classic torn-gauge bug: a field updated with
// atomic.AddInt64 but snapshotted with a bare read tears under the race
// detector and on 32-bit targets, and a bare write can lose a
// concurrent atomic increment entirely.
//
// The repo's own convention is stronger — use the typed atomics
// (atomic.Int64 &c.), which make mixed access unrepresentable — so any
// finding here is either legacy raw-atomic code to migrate or a real
// bug. Plain accesses inside `New*` constructors and package init are
// exempt: before the value escapes, no concurrency exists.
package atomicmix

import (
	"go/ast"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Analyzer detects mixed atomic/plain access.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc:  "forbid plain access to variables also touched via sync/atomic",
	Run:  run,
}

type site struct {
	pos   ast.Node
	inNew bool
}

func run(pass *framework.Pass) error {
	// First pass: which objects are the target of a sync/atomic call,
	// and where (so the atomic &x.f operands can be excluded below).
	atomicObjs := make(map[types.Object]ast.Node) // obj -> first atomic call
	atomicOperands := make(map[ast.Expr]bool)     // &x.f exprs inside atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Typed atomics (atomic.Int64 methods) are safe by
				// construction; only package-level funcs take &addr.
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				obj := addrTarget(pass, un.X)
				if obj == nil {
					continue
				}
				atomicOperands[un.X] = true
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Second pass: every other access to those objects is plain.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			exempt := isFunc && constructorExempt(fd)
			ast.Inspect(d, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				if atomicOperands[e] {
					return false // the sanctioned &x.f operand itself
				}
				obj := accessTarget(pass, e)
				if obj == nil {
					return true
				}
				first, isAtomic := atomicObjs[obj]
				if !isAtomic || exempt {
					return true
				}
				pass.Reportf(e.Pos(),
					"%s is accessed via sync/atomic (e.g. at %s) but read/written plainly here; every access must be atomic",
					obj.Name(), pass.Fset.Position(first.Pos()))
				return false
			})
		}
	}
	return nil
}

// constructorExempt: plain initialization before the value escapes.
func constructorExempt(fd *ast.FuncDecl) bool {
	return strings.HasPrefix(fd.Name.Name, "New") || fd.Name.Name == "init"
}

// addrTarget resolves the variable or field an addressable expression
// names: x, x.f, x[i].f chains ending in an identifier or selection.
func addrTarget(pass *framework.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return v // pkg-qualified var
		}
	}
	return nil
}

// accessTarget is addrTarget restricted to read/write positions: it
// resolves idents and field selections but not the blank identifier or
// definitions.
func accessTarget(pass *framework.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}
