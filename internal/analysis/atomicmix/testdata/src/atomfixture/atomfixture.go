// Package atomfixture exercises the atomicmix analyzer: the hits field
// is updated through sync/atomic, so every other access must be too.
package atomfixture

import "sync/atomic"

type Stats struct {
	hits   int64
	misses int64
	// typed is immune by construction: the typed atomics have no
	// plain-access spelling.
	typed atomic.Int64
}

var global int64

func (s *Stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) TornRead() int64 {
	return s.hits // want `hits is accessed via sync/atomic`
}

func (s *Stats) TornWrite() {
	s.hits = 0 // want `hits is accessed via sync/atomic`
}

func (s *Stats) AtomicRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

// misses is only ever plain: no finding.
func (s *Stats) Miss() {
	s.misses++
}

func (s *Stats) Typed() int64 {
	s.typed.Add(1)
	return s.typed.Load()
}

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobal() int64 {
	return global // want `global is accessed via sync/atomic`
}

// NewStats may initialize plainly: the value has not escaped yet.
func NewStats() *Stats {
	s := &Stats{}
	s.hits = 0
	return s
}

func waivedRead(s *Stats) int64 {
	//lint:allow atomicmix fixture demonstrates a waived snapshot read
	return s.hits
}
