// Package atomclean is the atomicmix negative fixture: typed atomics
// everywhere, plus an all-plain counter that never touches sync/atomic.
package atomclean

import "sync/atomic"

type Gauge struct {
	val  atomic.Int64
	name string
}

func (g *Gauge) Inc()         { g.val.Add(1) }
func (g *Gauge) Get() int64   { return g.val.Load() }
func (g *Gauge) Name() string { return g.name }

type plainCounter struct{ n int }

func (c *plainCounter) bump()    { c.n++ }
func (c *plainCounter) get() int { return c.n }
