package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects typechecking problems. Analysis still runs on
	// a best-effort basis, but the driver surfaces these separately.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// Load resolves the given package patterns (e.g. "./...") in dir,
// compiles export data for every dependency via the go tool, and parses
// + typechecks each matched package from source. Only non-DepOnly
// matches are returned; dependencies contribute export data only.
//
// The go tool is invoked once, so the cost is one build of the module's
// dependency graph (cached by the go build cache across runs).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg := &Package{PkgPath: t.ImportPath, Dir: t.Dir, Fset: fset}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", filepath.Join(t.Dir, name), err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", lookup),
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
		pkg.Files = files
		pkg.Types = tpkg
		pkg.Info = info
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
