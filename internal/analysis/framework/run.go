package framework

import "fmt"

// Run executes every analyzer over every package and returns the
// surviving findings, ordered by position. //lint:allow suppressions
// are applied here; malformed suppressions surface as "allowsyntax"
// findings so they cannot silently disable a check. Analyzers with a
// Finish hook get it invoked once after the per-package loop, with
// their passes (and whatever facts those stored); Finish findings pass
// through the same suppression filter.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	var allRules []allowRule
	passesOf := make(map[*Analyzer][]*Pass, len(analyzers))
	for _, pkg := range pkgs {
		var raw []Diagnostic
		rules := collectAllows(pkg.Fset, pkg.Files, func(d Diagnostic) {
			raw = append(raw, d)
		})
		allRules = append(allRules, rules...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				d.Analyzer = name
				raw = append(raw, d)
			}
			passesOf[a] = append(passesOf[a], pass)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		seen := make(map[string]bool)
		for _, d := range raw {
			if suppressed(pkg.Fset, rules, d) {
				continue
			}
			key := fmt.Sprintf("%v|%s|%s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			if seen[key] {
				continue
			}
			seen[key] = true
			all = append(all, d)
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		seen := make(map[string]bool)
		for _, a := range analyzers {
			if a.Finish == nil {
				continue
			}
			var finish []Diagnostic
			name := a.Name
			fc := &FinishContext{
				Fset:   fset,
				Passes: passesOf[a],
				Report: func(d Diagnostic) {
					d.Analyzer = name
					finish = append(finish, d)
				},
			}
			if err := a.Finish(fc); err != nil {
				return nil, fmt.Errorf("%s: finish: %v", a.Name, err)
			}
			for _, d := range finish {
				if suppressed(fset, allRules, d) {
					continue
				}
				key := fmt.Sprintf("%v|%s|%s", fset.Position(d.Pos), d.Analyzer, d.Message)
				if seen[key] {
					continue
				}
				seen[key] = true
				all = append(all, d)
			}
		}
		SortDiagnostics(fset, all)
	}
	return all, nil
}
