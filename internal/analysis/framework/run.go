package framework

import "fmt"

// Run executes every analyzer over every package and returns the
// surviving findings, ordered by position. //lint:allow suppressions
// are applied here; malformed suppressions surface as "allowsyntax"
// findings so they cannot silently disable a check.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		rules := collectAllows(pkg.Fset, pkg.Files, func(d Diagnostic) {
			raw = append(raw, d)
		})
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		seen := make(map[string]bool)
		for _, d := range raw {
			if suppressed(pkg.Fset, rules, d) {
				continue
			}
			key := fmt.Sprintf("%v|%s|%s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			if seen[key] {
				continue
			}
			seen[key] = true
			all = append(all, d)
		}
	}
	if len(pkgs) > 0 {
		SortDiagnostics(pkgs[0].Fset, all)
	}
	return all, nil
}
