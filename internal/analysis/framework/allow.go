package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//lint:allow <analyzer> <reason...>
//
// A trailing comment suppresses findings on its own line; a comment on
// a line of its own also suppresses the line below it; a directive in a
// declaration's doc comment suppresses the whole declaration.
const allowPrefix = "lint:allow"

// allowRule is one suppression: findings of Analyzer on lines
// [From, To] of File are dropped.
type allowRule struct {
	Analyzer string
	File     string
	From, To int
}

// collectAllows extracts every //lint:allow rule in the package and
// reports malformed ones (missing analyzer or reason) as diagnostics so
// that a bare suppression cannot silently disable a check.
func collectAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []allowRule {
	var rules []allowRule

	addComment := func(c *ast.Comment) (string, bool) {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if !strings.HasPrefix(text, allowPrefix) {
			return "", false
		}
		fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
		if len(fields) < 2 {
			report(Diagnostic{
				Pos:      c.Pos(),
				Message:  "malformed lint:allow: want //lint:allow <analyzer> <reason>",
				Analyzer: "allowsyntax",
			})
			return "", false
		}
		return fields[0], true
	}

	for _, f := range files {
		// Doc-comment directives cover the whole declaration.
		docs := make(map[*ast.CommentGroup]ast.Decl)
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					docs[d.Doc] = d
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docs[d.Doc] = d
				}
			}
		}
		for _, cg := range f.Comments {
			decl := docs[cg]
			for _, c := range cg.List {
				name, ok := addComment(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rule := allowRule{Analyzer: name, File: pos.Filename}
				if decl != nil {
					rule.From = fset.Position(decl.Pos()).Line
					rule.To = fset.Position(decl.End()).Line
				} else {
					// Cover the comment's own line (trailing form) and
					// the next line (standalone form).
					rule.From = pos.Line
					rule.To = pos.Line + 1
				}
				rules = append(rules, rule)
			}
		}
	}
	return rules
}

// suppressed reports whether d is covered by an allow rule.
func suppressed(fset *token.FileSet, rules []allowRule, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, r := range rules {
		if r.Analyzer != d.Analyzer {
			continue
		}
		if r.File == pos.Filename && r.From <= pos.Line && pos.Line <= r.To {
			return true
		}
	}
	return false
}
