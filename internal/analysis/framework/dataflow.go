package framework

// Generic forward/backward dataflow over a CFG: a worklist fixpoint
// with analyzer-supplied lattice operations. The solver treats a nil
// fact as ⊥ ("block not reached"); Transfer and Join never see nil on
// the side the solver controls, and unreachable blocks keep a nil
// in-fact, which is how reporting passes skip them.
//
// Facts must be treated as immutable: Transfer, Join and Refine return
// new (or unchanged) values and never mutate their arguments, because
// the same fact value may be flowing along several edges at once.
// Convergence requires the usual lattice conditions — Join monotone and
// the fact domain of finite height; the solver additionally bounds
// iterations defensively and reports whether it converged.

// Fact is an analyzer-defined dataflow fact. nil means "unreached".
type Fact any

// Flow is one dataflow problem over a CFG.
type Flow struct {
	CFG *CFG
	// Entry is the boundary fact: at CFG entry for forward problems, at
	// CFG exit for backward ones.
	Entry Fact
	// Join merges two reached facts into their least upper bound.
	Join func(a, b Fact) Fact
	// Transfer applies one block's nodes to in, returning the out fact.
	Transfer func(b *Block, in Fact) Fact
	// Refine, when non-nil, narrows the fact flowing along one edge —
	// branch-sensitive analyses use Block.Branch plus the successor
	// position (Succs[0] true, Succs[1] false) to sharpen facts.
	Refine func(from, to *Block, out Fact) Fact
	// Equal reports fact equality; it bounds the fixpoint.
	Equal func(a, b Fact) bool
	// Backward solves against the flipped graph (Preds as successors).
	Backward bool
}

// FlowResult carries the fixpoint solution.
type FlowResult struct {
	// In is the fact at each block's entry (forward) or exit (backward);
	// nil for unreachable blocks. Out is the transferred side.
	In, Out map[*Block]Fact
	// Iterations counts block visits until the fixpoint; Converged is
	// false only if the defensive iteration bound was hit, which means
	// the analyzer's lattice is broken (infinite height or non-monotone
	// join).
	Iterations int
	Converged  bool
}

// Solve runs the worklist fixpoint.
func (f *Flow) Solve() *FlowResult {
	res := &FlowResult{
		In:        make(map[*Block]Fact, len(f.CFG.Blocks)),
		Out:       make(map[*Block]Fact, len(f.CFG.Blocks)),
		Converged: true,
	}
	start := f.CFG.Entry
	if f.Backward {
		start = f.CFG.Exit
	}
	succs := func(b *Block) []*Block {
		if f.Backward {
			return b.Preds
		}
		return b.Succs
	}

	res.In[start] = f.Entry
	work := []*Block{start}
	queued := map[*Block]bool{start: true}
	// Defensive bound: |blocks|² × fan-out is far beyond any finite
	// lattice the suite uses; hitting it flags a broken transfer.
	maxVisits := (len(f.CFG.Blocks) + 1) * (len(f.CFG.Blocks) + 1) * 4

	for len(work) > 0 {
		if res.Iterations >= maxVisits {
			res.Converged = false
			return res
		}
		b := work[0]
		work = work[1:]
		queued[b] = false
		res.Iterations++

		in := res.In[b]
		out := f.Transfer(b, in)
		res.Out[b] = out
		for _, s := range succs(b) {
			e := out
			if f.Refine != nil {
				e = f.Refine(b, s, out)
			}
			old, seen := res.In[s]
			var merged Fact
			if !seen || old == nil {
				merged = e
			} else {
				merged = f.Join(old, e)
			}
			if seen && f.Equal(old, merged) {
				continue
			}
			res.In[s] = merged
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}
