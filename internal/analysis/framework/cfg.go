package framework

// This file is the framework's control-flow-graph builder: basic blocks
// over one function body, with edges for branches, loops (break /
// continue / labels / goto), switch fallthrough, select, panic, and a
// defer-aware exit path. It is deliberately AST-only — no type
// information is needed — so fixtures and unit tests can build graphs
// straight from parsed source.
//
// Conventions analyzers rely on:
//
//   - Entry is the first block, Exit the unique last one. Every return,
//     panic and natural fall-off-the-end routes to Exit *through the
//     defer chain*: one block per `defer` statement, in LIFO order,
//     whose single node is a DeferredCall wrapping the deferred call.
//     The DeferStmt itself stays in its home block as the registration
//     point. A defer registered on only some paths still appears in the
//     chain once — analyzers that need must-run semantics should key off
//     the registration instead (see bufown).
//
//   - A block whose Branch field is non-nil ends in a two-way
//     conditional: Succs[0] is the true edge and Succs[1] the false
//     edge. Dataflow analyses use this with Flow.Refine for
//     branch-sensitive facts. Multi-way branches (switch, select) have
//     Branch == nil and one successor per case.
//
//   - Function literals are opaque: their bodies are never descended
//     into. Analyzers build a separate CFG per literal.
//
//   - Blocks with no predecessors (other than Entry) are unreachable —
//     statements after a return, or break-only loop exits. Solvers skip
//     them naturally because their in-fact stays ⊥.

import (
	"fmt"
	"go/ast"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists the function's defer statements in registration
	// (textual/execution) order; the exit chain runs them in reverse.
	Defers []*ast.DeferStmt
}

// Block is one basic block: nodes executed in order, then a jump.
type Block struct {
	Index int
	// Kind labels the block's structural role for tests and debugging:
	// entry, exit, body, if.then, if.else, if.done, for.head, for.body,
	// for.post, for.done, range.head, range.body, range.done,
	// switch.case, switch.done, select.comm, select.done, label.<name>,
	// defer, dead.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Branch is the controlling condition when this block ends in a
	// two-way branch: Succs[0] is taken when Branch is true, Succs[1]
	// when false.
	Branch ast.Expr
}

// DeferredCall wraps a deferred call re-materialized on the exit chain,
// so transfer functions can tell "the deferred call runs now" apart
// from the registration-time DeferStmt (whose arguments evaluate at
// registration).
type DeferredCall struct{ *ast.CallExpr }

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	cfg := &CFG{}
	b := &builder{cfg: cfg, labels: make(map[string]*Block)}
	cfg.Entry = b.newBlock("entry")
	b.cur = cfg.Entry
	b.stmts(body.List)
	b.exits = append(b.exits, b.cur)

	cfg.Exit = b.newBlock("exit")
	// Defer chain: last registered runs first, so walk registrations
	// forward building the chain back from Exit.
	chain := cfg.Exit
	for _, d := range cfg.Defers {
		blk := b.newBlock("defer")
		blk.Nodes = append(blk.Nodes, DeferredCall{d.Call})
		blk.Succs = append(blk.Succs, chain)
		chain = blk
	}
	for _, e := range b.exits {
		e.Succs = append(e.Succs, chain)
	}
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return cfg
}

// String renders the graph compactly for test failures.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		succs := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = fmt.Sprintf("b%d", s.Index)
		}
		fmt.Fprintf(&sb, "b%d %s [%d nodes] -> %s\n",
			b.Index, b.Kind, len(b.Nodes), strings.Join(succs, ","))
	}
	return sb.String()
}

// frame tracks the break/continue targets of one enclosing loop,
// switch or select (continueTo is nil for the latter two).
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	cfg    *CFG
	cur    *Block
	exits  []*Block // blocks that jump to the function exit
	frames []frame
	labels map[string]*Block // goto / labeled-statement targets
	// fallTo is the next case block while building a switch case, the
	// target of a fallthrough statement.
	fallTo *Block
	// pendingLabel names the label wrapping the next loop/switch so
	// `break L` / `continue L` resolve.
	pendingLabel string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jumpExit ends the current block on a path to the function exit.
func (b *builder) jumpExit() {
	b.exits = append(b.exits, b.cur)
	b.cur = b.newBlock("dead")
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicExpr(s.X) {
			b.jumpExit()
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.jumpExit()
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.ForStmt:
		b.buildFor(s)
	case *ast.RangeStmt:
		b.buildRange(s)
	case *ast.SwitchStmt:
		b.buildCases(s, s.Init, s.Tag, nil, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.buildCases(s, s.Init, nil, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		b.buildSelect(s)
	case *ast.BranchStmt:
		b.buildBranch(s)
	case *ast.LabeledStmt:
		target, ok := b.labels[s.Label.Name]
		if !ok {
			target = b.newBlock("label." + s.Label.Name)
			b.labels[s.Label.Name] = target
		}
		b.edge(b.cur, target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	default:
		// Assignments, declarations, inc/dec, sends, go statements,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) buildIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	cond := b.cur
	cond.Nodes = append(cond.Nodes, s.Cond)
	cond.Branch = s.Cond

	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.edge(cond, then)
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock("if.else")
		b.edge(cond, elseB)
	} else {
		b.edge(cond, done)
	}
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, done)
	if elseB != nil {
		b.cur = elseB
		b.stmt(s.Else)
		b.edge(b.cur, done)
	}
	b.cur = done
}

func (b *builder) buildFor(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Branch = s.Cond
		b.edge(head, body)
		b.edge(head, done)
	} else {
		// `for {}`: done is reachable only through break.
		b.edge(head, body)
	}
	latch := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		latch = post
	}
	b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: latch})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, latch)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
	_ = post
}

func (b *builder) buildRange(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	head.Nodes = append(head.Nodes, s)
	b.edge(b.cur, head)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, done)
	b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: head})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// buildCases handles switch and type-switch: one block per case, all
// fed from the head, fallthrough edges between consecutive cases.
func (b *builder) buildCases(s ast.Stmt, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFall bool) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	done := b.newBlock("switch.done")

	var cases []*Block
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		cb := b.newBlock("switch.case")
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, cb)
		cases = append(cases, cb)
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	savedFall := b.fallTo
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		b.fallTo = nil
		if allowFall && i+1 < len(cases) {
			b.fallTo = cases[i+1]
		}
		b.cur = cases[i]
		b.stmts(cc.Body)
		b.edge(b.cur, done)
	}
	b.fallTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) buildSelect(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		cb := b.newBlock("select.comm")
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) buildBranch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.frameTarget(label, false); t != nil {
			b.edge(b.cur, t)
		}
	case "continue":
		if t := b.frameTarget(label, true); t != nil {
			b.edge(b.cur, t)
		}
	case "goto":
		target, ok := b.labels[label]
		if !ok {
			target = b.newBlock("label." + label)
			b.labels[label] = target
		}
		b.edge(b.cur, target)
	case "fallthrough":
		if b.fallTo != nil {
			b.edge(b.cur, b.fallTo)
		}
	}
	b.cur = b.newBlock("dead")
}

// frameTarget resolves a break (wantContinue=false) or continue target,
// optionally by label.
func (b *builder) frameTarget(label string, wantContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if wantContinue {
			if f.continueTo != nil {
				return f.continueTo
			}
			if label != "" {
				return nil
			}
			continue
		}
		return f.breakTo
	}
	return nil
}

func isPanicExpr(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
