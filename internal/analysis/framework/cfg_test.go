package framework

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` as the body of a single function declaration
// and returns its CFG.
func parseBody(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	f, err := parser.ParseFile(fset, "cfg_test.go", file, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body)
}

// kinds returns the multiset of block kinds, normalized (label.<x> → label).
func kinds(c *CFG) map[string]int {
	m := make(map[string]int)
	for _, b := range c.Blocks {
		k := b.Kind
		if strings.HasPrefix(k, "label.") {
			k = "label"
		}
		m[k]++
	}
	return m
}

// hasEdge reports a direct edge between two kinds (first match wins).
func hasEdge(c *CFG, from, to string) bool {
	for _, b := range c.Blocks {
		if b.Kind != from {
			continue
		}
		for _, s := range b.Succs {
			if s.Kind == to {
				return true
			}
		}
	}
	return false
}

// reaches reports whether Exit is reachable from Entry.
func reaches(c *CFG, from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGIfElse(t *testing.T) {
	c := parseBody(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x`)
	k := kinds(c)
	if k["if.then"] != 1 || k["if.else"] != 1 || k["if.done"] != 1 {
		t.Fatalf("if/else blocks missing:\n%s", c)
	}
	// The entry block ends in the condition: two successors, true edge
	// first, and Branch set.
	var cond *Block
	for _, b := range c.Blocks {
		if b.Branch != nil {
			cond = b
		}
	}
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("no two-way branch block:\n%s", c)
	}
	if cond.Succs[0].Kind != "if.then" || cond.Succs[1].Kind != "if.else" {
		t.Fatalf("branch edge order wrong (want then,else): %s -> %s,%s",
			cond.Kind, cond.Succs[0].Kind, cond.Succs[1].Kind)
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
}

func TestCFGIfWithoutElseFallsThrough(t *testing.T) {
	c := parseBody(t, `
	x := 1
	if x > 0 {
		return
	}
	x = 2
	_ = x`)
	var cond *Block
	for _, b := range c.Blocks {
		if b.Branch != nil {
			cond = b
		}
	}
	if cond == nil || len(cond.Succs) != 2 || cond.Succs[1].Kind != "if.done" {
		t.Fatalf("false edge should go to if.done:\n%s", c)
	}
	// The then-branch returns: its block must route to Exit, not to
	// if.done.
	then := cond.Succs[0]
	if got := then.Succs[0]; got != c.Exit {
		t.Fatalf("return edge goes to %s, want exit:\n%s", got.Kind, c)
	}
}

func TestCFGForBreakContinue(t *testing.T) {
	c := parseBody(t, `
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
	}`)
	k := kinds(c)
	if k["for.head"] != 1 || k["for.body"] != 1 || k["for.post"] != 1 || k["for.done"] != 1 {
		t.Fatalf("for blocks missing: %v\n%s", k, c)
	}
	if !hasEdge(c, "if.then", "for.post") {
		t.Fatalf("continue should edge to for.post:\n%s", c)
	}
	if !hasEdge(c, "if.then", "for.done") {
		t.Fatalf("break should edge to for.done:\n%s", c)
	}
	if !hasEdge(c, "for.post", "for.head") {
		t.Fatalf("post must loop back to head:\n%s", c)
	}
	// The head is a conditional branch: body on true, done on false.
	for _, b := range c.Blocks {
		if b.Kind == "for.head" {
			if b.Branch == nil || b.Succs[0].Kind != "for.body" || b.Succs[1].Kind != "for.done" {
				t.Fatalf("for.head branch shape wrong:\n%s", c)
			}
		}
	}
}

func TestCFGRangeBreakContinue(t *testing.T) {
	c := parseBody(t, `
	xs := []int{1, 2, 3}
	for _, x := range xs {
		if x == 1 {
			continue
		}
		if x == 2 {
			break
		}
	}`)
	if !hasEdge(c, "range.head", "range.body") || !hasEdge(c, "range.head", "range.done") {
		t.Fatalf("range head edges missing:\n%s", c)
	}
	if !hasEdge(c, "if.then", "range.head") {
		t.Fatalf("continue should edge back to range.head:\n%s", c)
	}
	if !hasEdge(c, "if.then", "range.done") {
		t.Fatalf("break should edge to range.done:\n%s", c)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := parseBody(t, `
outer:
	for {
		for {
			break outer
		}
	}
	return`)
	// break outer must edge from the inner body to the OUTER loop's
	// done block, which then reaches exit.
	var outerDone *Block
	for _, b := range c.Blocks {
		if b.Kind == "for.done" {
			outerDone = b // first for.done created is the outer loop's
			break
		}
	}
	if outerDone == nil || !reaches(c, c.Entry, outerDone) {
		t.Fatalf("labeled break misses outer done:\n%s", c)
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Fatalf("exit unreachable through labeled break:\n%s", c)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := parseBody(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	k := kinds(c)
	if k["switch.case"] != 3 || k["switch.done"] != 1 {
		t.Fatalf("switch blocks missing: %v\n%s", k, c)
	}
	// fallthrough: case-1 block must have case-2's block as a successor.
	var caseBlocks []*Block
	for _, b := range c.Blocks {
		if b.Kind == "switch.case" {
			caseBlocks = append(caseBlocks, b)
		}
	}
	found := false
	for _, s := range caseBlocks[0].Succs {
		if s == caseBlocks[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge case1 -> case2 missing:\n%s", c)
	}
}

func TestCFGSwitchNoDefaultFallsThrough(t *testing.T) {
	c := parseBody(t, `
	x := 1
	switch x {
	case 1:
	}
	_ = x`)
	// Without a default, the head needs a direct edge to done.
	if !hasEdge(c, "entry", "switch.done") {
		t.Fatalf("no-default switch should edge head -> done:\n%s", c)
	}
}

func TestCFGSelect(t *testing.T) {
	c := parseBody(t, `
	ch := make(chan int)
	done := make(chan struct{})
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			_ = v
		}
	}`)
	k := kinds(c)
	if k["select.comm"] != 2 {
		t.Fatalf("select comm blocks missing: %v\n%s", k, c)
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Fatalf("return inside select should reach exit:\n%s", c)
	}
}

func TestCFGDeferChain(t *testing.T) {
	c := parseBody(t, `
	defer println("a")
	defer println("b")
	return`)
	if len(c.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d", len(c.Defers))
	}
	// LIFO: the exit chain runs b then a. Walk from any exit jump.
	var chain []*Block
	for _, b := range c.Blocks {
		if b.Kind == "defer" {
			chain = append(chain, b)
		}
	}
	if len(chain) != 2 {
		t.Fatalf("want 2 defer blocks:\n%s", c)
	}
	// The chain entry (last registered) must be the one whose successor
	// is the other defer block; the first registered feeds Exit.
	var first, last *Block
	for _, b := range chain {
		if len(b.Succs) == 1 && b.Succs[0] == c.Exit {
			first = b
		} else if len(b.Succs) == 1 && b.Succs[0].Kind == "defer" {
			last = b
		}
	}
	if first == nil || last == nil || last.Succs[0] != first {
		t.Fatalf("defer chain not LIFO:\n%s", c)
	}
	dcA, okA := first.Nodes[0].(DeferredCall)
	dcB, okB := last.Nodes[0].(DeferredCall)
	if !okA || !okB {
		t.Fatalf("defer blocks must hold DeferredCall nodes")
	}
	if fmt.Sprint(dcA.Args[0]) == fmt.Sprint(dcB.Args[0]) {
		t.Fatalf("defer chain blocks should wrap distinct calls")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	c := parseBody(t, `
	for i := 0; i < 3; i++ {
		defer println(i)
	}`)
	if len(c.Defers) != 1 {
		t.Fatalf("want the loop defer recorded once, got %d", len(c.Defers))
	}
	// The registration stays in the loop body; the chain holds one
	// DeferredCall between the exits and Exit.
	if !hasEdge(c, "for.done", "defer") {
		t.Fatalf("loop exit should route through the defer chain:\n%s", c)
	}
	if !hasEdge(c, "defer", "exit") {
		t.Fatalf("defer chain should feed exit:\n%s", c)
	}
}

func TestCFGPanicRoutesThroughDefers(t *testing.T) {
	c := parseBody(t, `
	defer func() { recover() }()
	x := 1
	if x > 0 {
		panic("boom")
	}
	_ = x`)
	// The panic terminates its block and must reach Exit via the defer
	// chain (where the recover runs).
	var panicBlock *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanicExpr(es.X) {
				panicBlock = b
			}
		}
	}
	if panicBlock == nil {
		t.Fatalf("panic block not found:\n%s", c)
	}
	if len(panicBlock.Succs) != 1 || panicBlock.Succs[0].Kind != "defer" {
		t.Fatalf("panic should edge into the defer chain, got:\n%s", c)
	}
	if !reaches(c, panicBlock, c.Exit) {
		t.Fatalf("panic path should reach exit:\n%s", c)
	}
}

func TestCFGGoto(t *testing.T) {
	c := parseBody(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}`)
	if !hasEdge(c, "if.then", "label.loop") {
		t.Fatalf("goto should edge to its label block:\n%s", c)
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
}

// --- dataflow fixpoint ------------------------------------------------

// TestFlowForwardConvergence runs a "reached block count" analysis over
// a doubly nested loop: the fact is a bounded counter set, so the
// fixpoint must converge quickly and mark exactly the reachable blocks.
func TestFlowForwardConvergence(t *testing.T) {
	c := parseBody(t, `
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
		}
	}`)
	flow := &Flow{
		CFG:      c,
		Entry:    true,
		Join:     func(a, b Fact) Fact { return a.(bool) || b.(bool) },
		Transfer: func(_ *Block, in Fact) Fact { return in },
		Equal:    func(a, b Fact) bool { return a.(bool) == b.(bool) },
	}
	res := flow.Solve()
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations:\n%s", res.Iterations, c)
	}
	if res.Iterations > len(c.Blocks)*4 {
		t.Fatalf("too many iterations for a constant fact: %d over %d blocks",
			res.Iterations, len(c.Blocks))
	}
	// Every block except dead ones must be reached.
	for _, b := range c.Blocks {
		if b.Kind == "dead" {
			if res.In[b] != nil {
				t.Fatalf("dead block b%d reached", b.Index)
			}
			continue
		}
		if res.In[b] == nil {
			t.Fatalf("reachable block b%d %s not reached:\n%s", b.Index, b.Kind, c)
		}
	}
}

// TestFlowBranchRefinement checks Refine sees true/false edges in the
// documented order: a fact of "which way did the test go" must differ
// between then and else.
func TestFlowBranchRefinement(t *testing.T) {
	c := parseBody(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}`)
	facts := map[string]string{}
	flow := &Flow{
		CFG:      c,
		Entry:    "top",
		Join:     func(a, b Fact) Fact { return a.(string) + "|" + b.(string) },
		Transfer: func(_ *Block, in Fact) Fact { return in },
		Refine: func(from, to *Block, out Fact) Fact {
			if from.Branch == nil {
				return out
			}
			if to == from.Succs[0] {
				return "true-edge"
			}
			return "false-edge"
		},
		Equal: func(a, b Fact) bool { return a.(string) == b.(string) },
	}
	res := flow.Solve()
	for _, b := range c.Blocks {
		if f, ok := res.In[b].(string); ok {
			facts[b.Kind] = f
		}
	}
	if facts["if.then"] != "true-edge" || facts["if.else"] != "false-edge" {
		t.Fatalf("refined facts wrong: %v\n%s", facts, c)
	}
}

// TestFlowBackward runs a backward pass (a trivial liveness-style fact)
// and checks it converges and reaches Entry.
func TestFlowBackward(t *testing.T) {
	c := parseBody(t, `
	x := 1
	for i := 0; i < 3; i++ {
		x++
	}
	_ = x`)
	flow := &Flow{
		CFG:      c,
		Entry:    1,
		Join:     func(a, b Fact) Fact { return max(a.(int), b.(int)) },
		Transfer: func(_ *Block, in Fact) Fact { return in },
		Equal:    func(a, b Fact) bool { return a.(int) == b.(int) },
		Backward: true,
	}
	res := flow.Solve()
	if !res.Converged {
		t.Fatalf("backward flow did not converge")
	}
	if res.In[c.Entry] == nil {
		t.Fatalf("backward flow never reached entry:\n%s", c)
	}
}
