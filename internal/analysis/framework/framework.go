// Package framework is a minimal, dependency-free analog of
// golang.org/x/tools/go/analysis: just enough driver machinery to run
// hfetch's custom analyzers (see internal/analysis/...) over typechecked
// packages of this module. The x/tools framework is deliberately not
// imported — the repo builds offline with the standard library only — but
// the shapes (Analyzer, Pass, Diagnostic) mirror it closely enough that
// porting an analyzer between the two is mechanical.
//
// Packages are loaded by shelling out to `go list -export` and
// typechecking each target package from source against the compiler's
// export data (the same strategy go/packages uses), so analyzers see
// full type information including cross-package method sets.
//
// Findings can be suppressed with an annotation on the offending line
// (or the line above it, for a whole-line comment):
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare suppression is itself a finding.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a single package through
// its Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the rule being enforced.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package's Run with
	// all the passes that ran — the hook whole-tree contract checks
	// (driftcheck) use to union per-package facts before comparing them
	// against external ground truth. Findings it reports go through the
	// same //lint:allow filtering as per-package ones.
	Finish func(*FinishContext) error
}

// FinishContext carries the cross-package view to an Analyzer.Finish
// hook.
type FinishContext struct {
	// Fset is the shared file set of every loaded package. Finish hooks
	// that diagnose non-Go files (documentation contracts) may AddFile
	// them here to mint real positions.
	Fset *token.FileSet
	// Passes are this analyzer's per-package passes, with whatever each
	// Run stored in Pass.Facts.
	Passes []*Pass
	// Report delivers one whole-tree finding.
	Report func(Diagnostic)
}

// Pass carries one package's ASTs and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files, with
	// comments.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo records types, objects and selections for every
	// expression in Files.
	TypesInfo *types.Info
	// Report delivers one finding. The driver handles //lint:allow
	// filtering, deduplication and ordering; analyzers just report.
	Report func(Diagnostic)
	// Facts is scratch storage a Run may fill for its analyzer's Finish
	// hook; the framework never touches it.
	Facts any
}

// Reportf is a convenience formatter around Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Named returns the named type of t, unwrapping pointers and aliases;
// nil when t does not resolve to one.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeKey renders a named type as "pkgpath.Name" ("" for nil), the form
// the analyzer manifests use. Unexported types keep their package path,
// so manifests can name them even though other packages cannot.
func TypeKey(n *types.Named) string {
	if n == nil {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// ReceiverNamed returns the named type of a method's receiver (through
// pointers), or nil for functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return Named(sig.Recv().Type())
}

// CalleeFunc resolves the called function or method of a CallExpr via
// type information; nil for calls through plain function values,
// conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Func.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// SortDiagnostics orders findings by position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
