// Package pairing enforces resource pairing:
//
//   - Lock/Unlock: within a function, every mutex path that is locked
//     (q.mu.Lock(), st.mu.RLock(), ...) must also be unlocked somewhere
//     in the same function — a plain or deferred Unlock (RUnlock for
//     RLock) on the same textual path. Handoff designs that return
//     holding a lock are deliberate and carry //lint:allow pairing.
//
//   - Start/Stop: a type whose constructor (New*) or Start method
//     spawns goroutines (directly or by starting owned components)
//     must declare a Stop, Close, Drain or Shutdown method, so every
//     spawn has a reachable quiesce path.
//
// Both rules are intra-package and syntactic: they catch the "early
// return leaks the lock" and "background loop with no off switch"
// classes without whole-program analysis.
package pairing

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Analyzer enforces lock and lifecycle pairing.
var Analyzer = &framework.Analyzer{
	Name: "pairing",
	Doc:  "every Lock needs an Unlock in-function; every goroutine-spawning constructor needs a Stop/Drain",
	Run:  run,
}

var stopNames = []string{"Stop", "Close", "Drain", "Shutdown"}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairing(pass, fd)
		}
	}
	checkLifecycle(pass)
	return nil
}

// --- Lock/Unlock pairing ---------------------------------------------

type lockEvent struct {
	acquires []token.Pos
	releases int
}

func checkLockPairing(pass *framework.Pass, fd *ast.FuncDecl) {
	// One ledger per function; nested literals get their own, since a
	// literal may be the unlock half only when deferred from the same
	// function body (defer func() { mu.Unlock() }()), which Inspect
	// below keeps in the parent's ledger.
	events := make(map[string]*lockEvent)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		var kind string
		switch sel.Sel.Name {
		case "Lock":
			acquire, kind = true, "w"
		case "RLock":
			acquire, kind = true, "r"
		case "Unlock":
			kind = "w"
		case "RUnlock":
			kind = "r"
		default:
			return true
		}
		if !isMutex(pass, sel.X) {
			return true
		}
		key := kind + "|" + exprPath(pass.Fset, sel.X)
		ev := events[key]
		if ev == nil {
			ev = &lockEvent{}
			events[key] = ev
		}
		if acquire {
			ev.acquires = append(ev.acquires, call.Pos())
		} else {
			ev.releases++
		}
		return true
	})
	for key, ev := range events {
		if len(ev.acquires) == 0 || ev.releases > 0 {
			continue
		}
		verb := "Unlock"
		if strings.HasPrefix(key, "r|") {
			verb = "RUnlock"
		}
		for _, pos := range ev.acquires {
			pass.Reportf(pos,
				"%s locked with no %s anywhere in %s; add a deferred or explicit release (or //lint:allow pairing for a deliberate handoff)",
				key[2:], verb, fd.Name.Name)
		}
	}
}

// isMutex reports whether e's type is sync.Mutex/RWMutex (or a pointer
// to one).
func isMutex(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	n := framework.Named(tv.Type)
	if n == nil {
		return false
	}
	key := framework.TypeKey(n)
	return key == "sync.Mutex" || key == "sync.RWMutex"
}

// exprPath renders the receiver expression textually, normalizing index
// expressions so m.shards[i] and m.shards[j] pair up.
func exprPath(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	s := buf.String()
	// Collapse index expressions: a[i].mu == a[j].mu for pairing.
	var out strings.Builder
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			if depth == 0 {
				out.WriteByte('[')
			}
			depth++
		case ']':
			depth--
			if depth == 0 {
				out.WriteByte(']')
			}
		default:
			if depth == 0 {
				out.WriteByte(s[i])
			}
		}
	}
	return out.String()
}

// --- Start/Stop pairing ----------------------------------------------

func checkLifecycle(pass *framework.Pass) {
	if pass.Pkg == nil {
		return
	}
	// Named types declared in this package with their method sets.
	type typeInfo struct {
		hasStop  bool
		spawnPos token.Pos // where a goroutine is spawned on its behalf
		spawnIn  string
	}
	infos := make(map[*types.Named]*typeInfo)
	lookup := func(n *types.Named) *typeInfo {
		if n == nil || n.Obj().Pkg() != pass.Pkg {
			return nil
		}
		ti := infos[n]
		if ti == nil {
			ti = &typeInfo{}
			infos[n] = ti
			for _, name := range stopNames {
				for i := 0; i < n.NumMethods(); i++ {
					if n.Method(i).Name() == name {
						ti.hasStop = true
					}
				}
			}
		}
		return ti
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var owner *types.Named
			if fd.Recv != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					owner = framework.ReceiverNamed(fn)
				}
				if fd.Name.Name != "Start" && !strings.HasPrefix(fd.Name.Name, "start") {
					owner = nil
				}
			} else if strings.HasPrefix(fd.Name.Name, "New") {
				owner = constructedType(pass, fd)
			}
			ti := lookup(owner)
			if ti == nil {
				continue
			}
			if pos, ok := spawns(fd.Body); ok && ti.spawnPos == token.NoPos {
				ti.spawnPos = pos
				ti.spawnIn = fd.Name.Name
			}
		}
	}
	for n, ti := range infos {
		if ti.spawnPos != token.NoPos && !ti.hasStop {
			pass.Reportf(ti.spawnPos,
				"%s spawns a goroutine in %s but declares no Stop/Close/Drain/Shutdown method",
				n.Obj().Name(), ti.spawnIn)
		}
	}
}

// constructedType resolves the named type a New* constructor returns.
func constructedType(pass *framework.Pass, fd *ast.FuncDecl) *types.Named {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return nil
	}
	return framework.Named(res.At(0).Type())
}

// spawns reports the first goroutine spawn in body (a go statement
// outside nested function literals, or a call to an owned component's
// Start method is left to that component's own analysis).
func spawns(body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			pos = g.Pos()
			return false
		}
		return true
	})
	return pos, pos != token.NoPos
}
