// Package pairing enforces resource pairing:
//
//   - Lock/Unlock: within a function, every mutex path that is locked
//     (q.mu.Lock(), st.mu.RLock(), ...) must also be unlocked (RUnlock
//     for RLock) in the same function. Two rules layer: a key with no
//     release anywhere is flagged outright, and a key that is released
//     somewhere is additionally checked path-sensitively over the
//     framework CFG — every path from the acquire to function exit must
//     run a matching release (deferred releases count via the exit
//     chain), so an early return that skips the unlock is caught even
//     though an unlock exists elsewhere. Keys whose release half lives
//     in a nested function literal or is handed off as a method value
//     are exempt from the path check; fully deliberate handoffs carry
//     //lint:allow pairing.
//
//   - Start/Stop: a type whose constructor (New*) or Start method
//     spawns goroutines (directly or by starting owned components)
//     must declare a Stop, Close, Drain or Shutdown method, so every
//     spawn has a reachable quiesce path.
//
// Both rules are intra-package; the lifecycle half is syntactic and the
// lock half is CFG-based.
package pairing

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Analyzer enforces lock and lifecycle pairing.
var Analyzer = &framework.Analyzer{
	Name: "pairing",
	Doc:  "every Lock needs an Unlock in-function; every goroutine-spawning constructor needs a Stop/Drain",
	Run:  run,
}

var stopNames = []string{"Stop", "Close", "Drain", "Shutdown"}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairing(pass, fd)
		}
	}
	checkLifecycle(pass)
	return nil
}

// --- Lock/Unlock pairing ---------------------------------------------

type lockEvent struct {
	acquires []token.Pos
	releases int
}

func checkLockPairing(pass *framework.Pass, fd *ast.FuncDecl) {
	// One ledger per function; nested literals get their own, since a
	// literal may be the unlock half only when deferred from the same
	// function body (defer func() { mu.Unlock() }()), which Inspect
	// below keeps in the parent's ledger.
	events := make(map[string]*lockEvent)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		var kind string
		switch sel.Sel.Name {
		case "Lock":
			acquire, kind = true, "w"
		case "RLock":
			acquire, kind = true, "r"
		case "Unlock":
			kind = "w"
		case "RUnlock":
			kind = "r"
		default:
			return true
		}
		if !isMutex(pass, sel.X) {
			return true
		}
		key := kind + "|" + exprPath(pass.Fset, sel.X)
		ev := events[key]
		if ev == nil {
			ev = &lockEvent{}
			events[key] = ev
		}
		if acquire {
			ev.acquires = append(ev.acquires, call.Pos())
		} else {
			ev.releases++
		}
		return true
	})
	for key, ev := range events {
		if len(ev.acquires) == 0 || ev.releases > 0 {
			continue
		}
		verb := "Unlock"
		if strings.HasPrefix(key, "r|") {
			verb = "RUnlock"
		}
		for _, pos := range ev.acquires {
			pass.Reportf(pos,
				"%s locked with no %s anywhere in %s; add a deferred or explicit release (or //lint:allow pairing for a deliberate handoff)",
				key[2:], verb, fd.Name.Name)
		}
	}
	checkLockPaths(pass, fd, events)
}

// --- path-sensitive release check ------------------------------------

// pathHeld is the per-key dataflow state: how many acquisitions are
// outstanding on this path (clamped — only zero/nonzero matters at
// exit) and where the first one happened.
type pathHeld struct {
	count int
	pos   token.Pos
}

// heldFact maps lock keys to their outstanding state. Treated as
// immutable by the transfer.
type heldFact map[string]pathHeld

// checkLockPaths runs the CFG dataflow: for every key that has a
// release somewhere in the function (keys with none are already flagged
// by the anywhere-rule), check that no path reaches function exit with
// the lock still held. Deferred releases execute on the CFG's exit
// chain, so `defer mu.Unlock()` balances every path.
func checkLockPaths(pass *framework.Pass, fd *ast.FuncDecl, events map[string]*lockEvent) {
	candidates := make(map[string]bool)
	for key, ev := range events {
		if len(ev.acquires) > 0 && ev.releases > 0 {
			candidates[key] = true
		}
	}
	if len(candidates) == 0 {
		return
	}
	exempt := exemptKeys(pass, fd.Body)

	cfg := framework.NewCFG(fd.Body)
	flow := &framework.Flow{
		CFG:   cfg,
		Entry: heldFact{},
		Join:  joinHeld,
		Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
			h := cloneHeld(in.(heldFact))
			for _, n := range b.Nodes {
				transferNode(pass, n, h)
			}
			return h
		},
		Equal: equalHeld,
	}
	res := flow.Solve()
	out, ok := res.Out[cfg.Exit].(heldFact)
	if !ok || !res.Converged {
		return
	}
	for key, ph := range out {
		if ph.count == 0 || !candidates[key] || exempt[key] {
			continue
		}
		pass.Reportf(ph.pos,
			"%s locked but not released on every path out of %s; release before each return (or //lint:allow pairing for a deliberate handoff)",
			key[2:], fd.Name.Name)
	}
}

func transferNode(pass *framework.Pass, n ast.Node, h heldFact) {
	switch n := n.(type) {
	case framework.DeferredCall:
		// The deferred call executes here, on the exit chain.
		lockEffect(pass, n.CallExpr, h)
	case *ast.DeferStmt:
		// Registration only; the exit-chain DeferredCall applies it.
	case *ast.GoStmt:
		// Runs in another goroutine; its lock activity is not this
		// function's obligation.
	default:
		ast.Inspect(n, func(nn ast.Node) bool {
			switch nn := nn.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				lockEffect(pass, nn, h)
			}
			return true
		})
	}
}

// lockEffect applies one call's acquire/release to the fact in place
// (h is this transfer's private clone).
func lockEffect(pass *framework.Pass, call *ast.CallExpr, h heldFact) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	var acquire bool
	var kind string
	switch sel.Sel.Name {
	case "Lock":
		acquire, kind = true, "w"
	case "RLock":
		acquire, kind = true, "r"
	case "Unlock":
		kind = "w"
	case "RUnlock":
		kind = "r"
	default:
		return
	}
	if !isMutex(pass, sel.X) {
		return
	}
	key := kind + "|" + exprPath(pass.Fset, sel.X)
	ph := h[key]
	if acquire {
		if ph.count == 0 {
			ph.pos = call.Pos()
		}
		if ph.count < 2 { // clamp: only zero/nonzero matters at exit
			ph.count++
		}
	} else if ph.count > 0 {
		ph.count--
	}
	h[key] = ph
}

// exemptKeys marks keys whose release half lives outside the
// function's own CFG: a release call inside a nested function literal,
// or a Lock/Unlock-family method value (handoff) anywhere in the body.
func exemptKeys(pass *framework.Pass, body *ast.BlockStmt) map[string]bool {
	exempt := make(map[string]bool)
	calledFun := make(map[ast.Expr]bool)
	var litBodies []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			calledFun[ast.Unparen(n.Fun)] = true
		case *ast.FuncLit:
			litBodies = append(litBodies, n.Body)
		}
		return true
	})
	mark := func(n ast.Node, requireValue bool) {
		ast.Inspect(n, func(nn ast.Node) bool {
			sel, ok := nn.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var kind string
			switch sel.Sel.Name {
			case "Lock", "Unlock":
				kind = "w"
			case "RLock", "RUnlock":
				kind = "r"
			default:
				return true
			}
			if requireValue && calledFun[sel] {
				return true
			}
			if !isMutex(pass, sel.X) {
				return true
			}
			exempt[kind+"|"+exprPath(pass.Fset, sel.X)] = true
			return true
		})
	}
	for _, lb := range litBodies {
		mark(lb, false)
	}
	mark(body, true)
	return exempt
}

func cloneHeld(h heldFact) heldFact {
	out := make(heldFact, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func joinHeld(a, b framework.Fact) framework.Fact {
	ha, hb := a.(heldFact), b.(heldFact)
	out := cloneHeld(ha)
	for k, v := range hb {
		cur, ok := out[k]
		if !ok {
			out[k] = v
			continue
		}
		// May-held: a path that leaks dominates; earliest position for
		// deterministic messages.
		if v.count > cur.count {
			cur.count = v.count
		}
		if cur.pos == token.NoPos || (v.pos != token.NoPos && v.pos < cur.pos) {
			cur.pos = v.pos
		}
		out[k] = cur
	}
	return out
}

func equalHeld(a, b framework.Fact) bool {
	ha, hb := a.(heldFact), b.(heldFact)
	if len(ha) != len(hb) {
		return false
	}
	for k, v := range ha {
		if hb[k] != v {
			return false
		}
	}
	return true
}

// isMutex reports whether e's type is sync.Mutex/RWMutex (or a pointer
// to one).
func isMutex(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	n := framework.Named(tv.Type)
	if n == nil {
		return false
	}
	key := framework.TypeKey(n)
	return key == "sync.Mutex" || key == "sync.RWMutex"
}

// exprPath renders the receiver expression textually, normalizing index
// expressions so m.shards[i] and m.shards[j] pair up.
func exprPath(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	s := buf.String()
	// Collapse index expressions: a[i].mu == a[j].mu for pairing.
	var out strings.Builder
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			if depth == 0 {
				out.WriteByte('[')
			}
			depth++
		case ']':
			depth--
			if depth == 0 {
				out.WriteByte(']')
			}
		default:
			if depth == 0 {
				out.WriteByte(s[i])
			}
		}
	}
	return out.String()
}

// --- Start/Stop pairing ----------------------------------------------

func checkLifecycle(pass *framework.Pass) {
	if pass.Pkg == nil {
		return
	}
	// Named types declared in this package with their method sets.
	type typeInfo struct {
		hasStop  bool
		spawnPos token.Pos // where a goroutine is spawned on its behalf
		spawnIn  string
	}
	infos := make(map[*types.Named]*typeInfo)
	lookup := func(n *types.Named) *typeInfo {
		if n == nil || n.Obj().Pkg() != pass.Pkg {
			return nil
		}
		ti := infos[n]
		if ti == nil {
			ti = &typeInfo{}
			infos[n] = ti
			for _, name := range stopNames {
				for i := 0; i < n.NumMethods(); i++ {
					if n.Method(i).Name() == name {
						ti.hasStop = true
					}
				}
			}
		}
		return ti
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var owner *types.Named
			if fd.Recv != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					owner = framework.ReceiverNamed(fn)
				}
				if fd.Name.Name != "Start" && !strings.HasPrefix(fd.Name.Name, "start") {
					owner = nil
				}
			} else if strings.HasPrefix(fd.Name.Name, "New") {
				owner = constructedType(pass, fd)
			}
			ti := lookup(owner)
			if ti == nil {
				continue
			}
			if pos, ok := spawns(fd.Body); ok && ti.spawnPos == token.NoPos {
				ti.spawnPos = pos
				ti.spawnIn = fd.Name.Name
			}
		}
	}
	for n, ti := range infos {
		if ti.spawnPos != token.NoPos && !ti.hasStop {
			pass.Reportf(ti.spawnPos,
				"%s spawns a goroutine in %s but declares no Stop/Close/Drain/Shutdown method",
				n.Obj().Name(), ti.spawnIn)
		}
	}
}

// constructedType resolves the named type a New* constructor returns.
func constructedType(pass *framework.Pass, fd *ast.FuncDecl) *types.Named {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return nil
	}
	return framework.Named(res.At(0).Type())
}

// spawns reports the first goroutine spawn in body (a go statement
// outside nested function literals, or a call to an owned component's
// Start method is left to that component's own analysis).
func spawns(body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			pos = g.Pos()
			return false
		}
		return true
	})
	return pos, pos != token.NoPos
}
