package pairing

import (
	"testing"

	"hfetch/internal/analysis/analysistest"
)

func TestPairingFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/pairfixture", Analyzer)
}

func TestPairingClean(t *testing.T) {
	analysistest.NoFindings(t, "./testdata/src/pairclean", Analyzer)
}
