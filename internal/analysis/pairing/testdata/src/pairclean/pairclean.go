// Package pairclean is the pairing negative fixture: disciplined
// lock/unlock pairs and a fully paired lifecycle.
package pairclean

import "sync"

type Cache struct {
	mu   sync.Mutex
	data map[string]int
	quit chan struct{}
}

func NewCache() *Cache {
	return &Cache{data: map[string]int{}, quit: make(chan struct{})}
}

func (c *Cache) Start() {
	go c.loop()
}

func (c *Cache) loop() {
	<-c.quit
}

func (c *Cache) Stop() { close(c.quit) }

func (c *Cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.data[k]
	return v, ok
}

func (c *Cache) Put(k string, v int) {
	c.mu.Lock()
	c.data[k] = v
	c.mu.Unlock()
}
