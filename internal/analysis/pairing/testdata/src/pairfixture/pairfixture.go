// Package pairfixture exercises the pairing analyzer: lock/unlock
// pairing within a function and Start/Stop pairing on goroutine owners.
package pairfixture

import "sync"

type Q struct {
	mu sync.RWMutex
	n  int
}

func (q *Q) leak() {
	q.mu.Lock() // want `q\.mu locked with no Unlock anywhere in leak`
	q.n++
}

func (q *Q) badRead() int {
	q.mu.RLock() // want `q\.mu locked with no RUnlock anywhere in badRead`
	defer q.mu.Unlock()
	return q.n
}

func (q *Q) good() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
}

func (q *Q) goodRead() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.n
}

func (q *Q) earlyReturn(b bool) {
	q.mu.Lock()
	if b {
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
}

// earlyLeak releases on the fall-through path only: the CFG path check
// catches the early return the anywhere-count misses.
func (q *Q) earlyLeak(b bool) int {
	q.mu.Lock() // want `q\.mu locked but not released on every path out of earlyLeak`
	if b {
		return -1
	}
	q.n++
	q.mu.Unlock()
	return q.n
}

// switchLeak misses the release in one case arm.
func (q *Q) switchLeak(mode int) {
	q.mu.Lock() // want `q\.mu locked but not released on every path out of switchLeak`
	switch mode {
	case 0:
		q.mu.Unlock()
	case 1:
		q.n++
		q.mu.Unlock()
	default:
		q.n-- // leaks
	}
}

// litRelease hands the unlock to a deferred literal; keys released
// inside nested literals are exempt from the path check.
func (q *Q) litRelease() {
	q.mu.Lock()
	defer func() { q.mu.Unlock() }()
	q.n++
}

// loopPaired locks and releases within each iteration; the loop
// back-edge must not accumulate held state.
func (q *Q) loopPaired(xs []int) {
	for range xs {
		q.mu.Lock()
		q.n++
		q.mu.Unlock()
	}
}

// handoff returns holding the lock by design.
func (q *Q) handoff() func() {
	//lint:allow pairing lock ownership transfers to the returned closure
	q.mu.Lock()
	return q.mu.Unlock
}

type shardSet struct {
	shards []Q
}

// indexed paths normalize, so lock on [i] pairs with unlock on [j].
func (s *shardSet) sweep(i, j int) {
	s.shards[i].mu.Lock()
	s.shards[j].mu.Unlock()
}

// Leaky spawns a background loop but has no quiesce method.
type Leaky struct{ ch chan int }

func NewLeaky() *Leaky {
	l := &Leaky{ch: make(chan int)}
	go func() { // want `Leaky spawns a goroutine in NewLeaky but declares no Stop/Close/Drain/Shutdown method`
		for range l.ch {
		}
	}()
	return l
}

// Worker pairs its Start spawn with a Stop method.
type Worker struct {
	quit chan struct{}
}

func (w *Worker) Start() {
	go func() {
		<-w.quit
	}()
}

func (w *Worker) Stop() { close(w.quit) }

// Plain never spawns: no lifecycle obligation.
type Plain struct{ n int }

func NewPlain() *Plain { return &Plain{} }
