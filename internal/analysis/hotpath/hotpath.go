// Package hotpath enforces the per-event allocation and clock rules on
// functions annotated with a `//hfetch:hotpath` directive in their doc
// comment (monitor drain, auditor scoring, server read, telemetry
// record). Inside an annotated function the analyzer flags:
//
//   - any call into fmt (Sprintf on the audit loop was the original
//     sin; strconv.Append* is the sanctioned replacement);
//   - any call into reflect;
//   - time.Now / time.Since / time.Until not dominated by the
//     telemetry sampling gate — an if whose condition contains a
//     TimeSample() call or a bool assigned from one;
//   - map allocation (make(map...) or a map composite literal);
//   - function literals (a closure allocation per event);
//   - no-copy rule: `make([]byte, n)` with a non-constant size (a
//     per-read payload allocation — draw from the slab, tiers.SlabGet)
//     and `copy()` between plain byte slices (a payload memcpy — serve
//     pinned tier views instead). Constant-size scratch buffers and
//     copies where either operand is array-backed (fixed-size encode
//     scratch like `arg[0:8]`) are exempt.
//
// Deliberate exceptions — an error path that formats once per failure,
// a clock fallback, an API whose contract is filling the caller's
// buffer — carry a //lint:allow hotpath annotation.
package hotpath

import (
	"go/ast"
	"go/types"

	"hfetch/internal/analysis/framework"
)

// Analyzer is the hotpath rule set.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "forbid fmt/reflect/unsampled clocks/map+closure allocation in //hfetch:hotpath functions",
	Run:  run,
}

const directive = "hfetch:hotpath"

// Annotated reports whether a function declaration carries the
// //hfetch:hotpath directive. Exported for use by other analyzers and
// the docs tooling.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//"+directive {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func check(pass *framework.Pass, fd *ast.FuncDecl) {
	timed := timedVars(pass, fd.Body)
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated in hot path; hoist it or restructure")
			return false // interior judged with the closure itself
		case *ast.CompositeLit:
			if t, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocated per event in hot path")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, stack, timed)
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node, timed map[types.Object]bool) {
	// Builtins: make(map[...]...) per event, non-constant make([]byte),
	// and payload copy().
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if len(call.Args) == 0 {
				return
			}
			t, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || !t.IsType() {
				return
			}
			if _, isMap := t.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "map allocated per event in hot path")
			} else if isByteSlice(t.Type) && len(call.Args) > 1 && !isConstExpr(pass, call.Args[1]) {
				pass.Reportf(call.Pos(), "per-read []byte allocation in hot path; draw segment-sized buffers from the slab (tiers.SlabGet)")
			}
			return
		case "copy":
			if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "copy" {
				break
			}
			if len(call.Args) == 2 && isPayloadCopy(pass, call.Args[0], call.Args[1]) {
				pass.Reportf(call.Pos(), "payload copy() in hot path; serve pinned tier views (tiers.Store.View/ReadVec) instead")
			}
			return
		}
	}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Methods ride along with the package-level entry point that
		// produced their receiver (reflect.TypeOf(v).Name() is one
		// finding at TypeOf, not two).
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		pass.Reportf(call.Pos(), "fmt.%s in hot path; use strconv.Append* or precomputed strings", fn.Name())
	case "reflect":
		pass.Reportf(call.Pos(), "reflect.%s in hot path", fn.Name())
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			if !sampleGated(pass, stack, timed) {
				pass.Reportf(call.Pos(),
					"unsampled time.%s in hot path; gate it behind TimeSample() (see telemetry.Registry.TimeSample)",
					fn.Name())
			}
		}
	}
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isConstExpr reports whether e is a compile-time constant (a fixed-size
// scratch buffer, not a per-read payload sizing).
func isConstExpr(pass *framework.Pass, e ast.Expr) bool {
	t, ok := pass.TypesInfo.Types[e]
	return ok && t.Value != nil
}

// isPayloadCopy reports whether a copy() call moves payload bytes: both
// operands are plain byte slices and neither is carved from a fixed-size
// array (binary-encode scratch like `copy(arg[0:8], tsb[:])` stays
// legal).
func isPayloadCopy(pass *framework.Pass, dst, src ast.Expr) bool {
	if !isByteSliceExpr(pass, dst) || !isByteSliceExpr(pass, src) {
		return false
	}
	return !arrayBacked(pass, dst) && !arrayBacked(pass, src)
}

func isByteSliceExpr(pass *framework.Pass, e ast.Expr) bool {
	t, ok := pass.TypesInfo.Types[e]
	return ok && t.Type != nil && isByteSlice(t.Type)
}

// arrayBacked reports whether e slices a fixed-size array (directly or
// through a pointer).
func arrayBacked(pass *framework.Pass, e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok {
		return false
	}
	t, ok := pass.TypesInfo.Types[se.X]
	if !ok || t.Type == nil {
		return false
	}
	switch u := t.Type.Underlying().(type) {
	case *types.Array:
		return true
	case *types.Pointer:
		_, isArr := u.Elem().Underlying().(*types.Array)
		return isArr
	}
	return false
}

// timedVars collects bool variables assigned from a TimeSample() call,
// e.g. `timed := s.tele.TimeSample()`.
func timedVars(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isTimeSampleCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isTimeSampleCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "TimeSample"
}

// sampleGated reports whether any enclosing if-condition establishes
// the sampling gate: it contains a TimeSample() call or reads a bool
// assigned from one.
func sampleGated(pass *framework.Pass, stack []ast.Node, timed map[types.Object]bool) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		gated := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isTimeSampleCall(n) {
					gated = true
				}
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil && timed[obj] {
					gated = true
				}
			}
			return !gated
		})
		if gated {
			return true
		}
	}
	return false
}
