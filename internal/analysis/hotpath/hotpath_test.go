package hotpath

import (
	"testing"

	"hfetch/internal/analysis/analysistest"
)

func TestHotpathFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/hotfixture", Analyzer)
}

func TestHotpathClean(t *testing.T) {
	analysistest.NoFindings(t, "./testdata/src/hotclean", Analyzer)
}
