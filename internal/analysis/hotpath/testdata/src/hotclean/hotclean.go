// Package hotclean is the hotpath clean case: an annotated function
// that follows every rule.
package hotclean

import (
	"strconv"
	"time"
)

type Reg struct{ n int }

func (r *Reg) TimeSample() bool {
	r.n++
	return r.n%8 == 0
}

//hfetch:hotpath
func drain(r *Reg, segs []int64, out []byte) []byte {
	var start time.Time
	timed := r.TimeSample()
	if timed {
		start = time.Now()
	}
	for _, s := range segs {
		out = strconv.AppendInt(out, s, 10)
	}
	if timed {
		_ = time.Since(start)
	}
	return out
}
