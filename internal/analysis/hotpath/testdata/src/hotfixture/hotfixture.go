// Package hotfixture exercises the hotpath analyzer. Only annotated
// functions are checked; unannotated twins of each violation prove the
// directive is what arms the rules.
package hotfixture

import (
	"fmt"
	"reflect"
	"strconv"
	"time"
)

type Reg struct{ n int }

func (r *Reg) TimeSample() bool {
	r.n++
	return r.n%8 == 0
}

//hfetch:hotpath
func sprintfInHotPath(file string, seg int64) string {
	return fmt.Sprintf("%s#%d", file, seg) // want `fmt.Sprintf in hot path`
}

//hfetch:hotpath
func errorfInHotPath(file string) error {
	return fmt.Errorf("bad file %s", file) // want `fmt.Errorf in hot path`
}

//hfetch:hotpath
func reflectInHotPath(v any) string {
	return reflect.TypeOf(v).Name() // want `reflect.TypeOf in hot path`
}

//hfetch:hotpath
func ungatedClock() int64 {
	return time.Now().UnixNano() // want `unsampled time.Now in hot path`
}

//hfetch:hotpath
func gatedClockDirect(r *Reg) int64 {
	if r.TimeSample() {
		return time.Now().UnixNano()
	}
	return 0
}

//hfetch:hotpath
func gatedClockViaVar(r *Reg) time.Duration {
	var start time.Time
	timed := r.TimeSample()
	if timed {
		start = time.Now()
	}
	work()
	if timed {
		return time.Since(start)
	}
	return 0
}

//hfetch:hotpath
func mapPerEvent(k string) map[string]int {
	m := make(map[string]int) // want `map allocated per event in hot path`
	m[k] = 1
	return m
}

//hfetch:hotpath
func mapLiteralPerEvent(k string) map[string]int {
	return map[string]int{k: 1} // want `map literal allocated per event in hot path`
}

//hfetch:hotpath
func closurePerEvent(xs []int) int {
	total := 0
	each(xs, func(x int) { total += x }) // want `closure allocated in hot path`
	return total
}

//hfetch:hotpath
func sanctioned(seg int64) string {
	var buf [24]byte
	return string(strconv.AppendInt(buf[:0], seg, 10))
}

//hfetch:hotpath
func payloadAllocPerRead(n int) []byte {
	return make([]byte, n) // want `per-read \[\]byte allocation in hot path`
}

//hfetch:hotpath
func payloadCopy(dst, src []byte) int {
	return copy(dst, src) // want `payload copy\(\) in hot path`
}

//hfetch:hotpath
func scratchAllocConstSize() []byte {
	return make([]byte, 16) // constant-size scratch: exempt
}

//hfetch:hotpath
func arrayScratchCopy(src []byte) uint8 {
	var arg [16]byte
	copy(arg[0:8], src) // array-backed destination: exempt
	return arg[0]
}

//hfetch:hotpath
func stringLabelCopy(dst []byte) int {
	return copy(dst, "label") // string source: not a payload move
}

//hfetch:hotpath
func waivedPayloadCopy(dst, src []byte) int {
	//lint:allow hotpath fixture demonstrates the sanctioned API-boundary copy
	return copy(dst, src)
}

//hfetch:hotpath
func allowedFallback(ts time.Time) time.Time {
	if ts.IsZero() {
		//lint:allow hotpath fixture demonstrates the sanctioned clock fallback
		ts = time.Now()
	}
	return ts
}

// unannotated may do all of it freely.
func unannotated(file string, seg int64, p []byte) string {
	_ = time.Now()
	_ = map[string]int{file: 1}
	buf := make([]byte, len(p))
	copy(buf, p)
	return fmt.Sprintf("%s#%d", file, seg)
}

func work() {}

func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}
