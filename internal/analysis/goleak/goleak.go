// Package goleak checks that every goroutine spawned on behalf of a
// long-lived type is joinable from its quiesce method.
//
// A type is long-lived when it declares Stop, Close, Drain or Shutdown.
// The analyzer first collects the type's *stop signals* — what the
// quiesce method (transitively, through other methods of the same
// type) actually triggers: `close(t.f)` and `t.f <- v` on channel
// fields, and calls to context.CancelFunc fields. It then examines
// every `go` statement in the type's methods and constructors and
// builds the framework CFG of the goroutine body (function literal or
// same-package function): each strongly connected component of the
// graph that contains a *daemon loop* — a `for` with no condition, or a
// `range` over a channel nothing closes — must observe one of the stop
// signals (a receive from a signal channel, a `<-ctx.Done()` when the
// type cancels a context, a range over a closed channel, or a call to a
// same-package helper that observes one). A cycle with no observation
// can never leave its loop once the quiesce method runs, so the
// goroutine leaks; the spawn is reported.
//
// Loops with an explicit exit condition (`for i < n`, `for !done`) and
// ranges over non-channel operands are exempt: they terminate on their
// own. Goroutines whose body cannot be resolved (method values from
// other packages, dynamic calls) are skipped. Types without any quiesce
// method are the pairing analyzer's problem, not this one's.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hfetch/internal/analysis/framework"
)

// Analyzer checks goroutine joinability.
var Analyzer = &framework.Analyzer{
	Name: "goleak",
	Doc:  "every goroutine spawned by a long-lived type must observe a stop signal its quiesce method triggers",
	Run:  run,
}

var quiesceNames = []string{"Stop", "Close", "Drain", "Shutdown"}

// signals is one owner type's shutdown surface.
type signals struct {
	owner string // framework.TypeKey of the owner
	// fields are channel/cancel fields the quiesce path triggers.
	fields map[string]bool
	// ctx: a context.CancelFunc field is invoked, so any <-ctx.Done()
	// receive counts as an observation.
	ctx bool
	// closedAnywhere are channel fields closed somewhere in the package
	// (a producer closing its output joins consumers ranging over it).
	closedAnywhere map[string]bool
	// quiesce is the method name used in messages.
	quiesce string
	// observers are same-package functions whose bodies observe one of
	// the signals; calls to them count as observations.
	observers map[*types.Func]bool
}

func run(pass *framework.Pass) error {
	c := &collector{pass: pass}
	c.index()
	for key := range c.quiesceOf {
		sigs := c.collect(key)
		if sigs == nil {
			continue
		}
		c.checkOwner(key, sigs)
	}
	return nil
}

type collector struct {
	pass *framework.Pass
	// methodsOf indexes this package's FuncDecls by receiver type key.
	methodsOf map[string][]*ast.FuncDecl
	// quiesceOf maps owner type keys to their quiesce method name.
	quiesceOf map[string]string
	// ctorsOf maps owner type keys to New* constructors returning them.
	ctorsOf map[string][]*ast.FuncDecl
	// declOf resolves a function object to its declaration.
	declOf map[*types.Func]*ast.FuncDecl
}

func (c *collector) index() {
	c.methodsOf = make(map[string][]*ast.FuncDecl)
	c.quiesceOf = make(map[string]string)
	c.ctorsOf = make(map[string][]*ast.FuncDecl)
	c.declOf = make(map[*types.Func]*ast.FuncDecl)
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			c.declOf[fn] = fd
			if recv := framework.ReceiverNamed(fn); recv != nil {
				key := framework.TypeKey(recv)
				c.methodsOf[key] = append(c.methodsOf[key], fd)
				for _, q := range quiesceNames {
					if fd.Name.Name == q {
						if _, have := c.quiesceOf[key]; !have {
							c.quiesceOf[key] = q
						}
					}
				}
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "New") {
				sig := fn.Type().(*types.Signature)
				if sig.Results().Len() > 0 {
					if n := framework.Named(sig.Results().At(0).Type()); n != nil {
						c.ctorsOf[framework.TypeKey(n)] = append(c.ctorsOf[framework.TypeKey(n)], fd)
					}
				}
			}
		}
	}
}

// collect walks the quiesce method and everything it calls on the same
// type, recording triggered signals.
func (c *collector) collect(ownerKey string) *signals {
	sigs := &signals{
		owner:          ownerKey,
		fields:         make(map[string]bool),
		closedAnywhere: make(map[string]bool),
		quiesce:        c.quiesceOf[ownerKey],
		observers:      make(map[*types.Func]bool),
	}
	// closedAnywhere: any close(x.f) in the package.
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "close" {
				return true
			}
			if name, ok := c.fieldOn(call.Args[0], ownerKey); ok {
				sigs.closedAnywhere[name] = true
			}
			return true
		})
	}

	var queue []*ast.FuncDecl
	seen := make(map[*ast.FuncDecl]bool)
	for _, fd := range c.methodsOf[ownerKey] {
		if fd.Name.Name == sigs.quiesce {
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if seen[fd] {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if name, ok := c.fieldOn(n.Args[0], ownerKey); ok {
						sigs.fields[name] = true
					}
					return true
				}
				// t.cancel() on a context.CancelFunc field.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal &&
						framework.TypeKey(framework.Named(s.Recv())) == ownerKey {
						if n := framework.Named(s.Obj().Type()); n != nil &&
							framework.TypeKey(n) == "context.CancelFunc" {
							sigs.ctx = true
							sigs.fields[s.Obj().Name()] = true
						}
						return true
					}
				}
				// Transitive: other methods of the same type.
				if fn := framework.CalleeFunc(c.pass.TypesInfo, n); fn != nil {
					if recv := framework.ReceiverNamed(fn); recv != nil &&
						framework.TypeKey(recv) == ownerKey {
						if fd2 := c.declOf[fn]; fd2 != nil && !seen[fd2] {
							queue = append(queue, fd2)
						}
					}
				}
			case *ast.SendStmt:
				if name, ok := c.fieldOn(n.Chan, ownerKey); ok {
					sigs.fields[name] = true
				}
			}
			return true
		})
	}
	if len(sigs.fields) == 0 && !sigs.ctx && len(sigs.closedAnywhere) == 0 {
		// Quiesce triggers nothing observable; spawn checks would flag
		// every goroutine. The quiesce may stop things by other means
		// (waitgroups over bounded work); stay quiet.
		return nil
	}
	c.findObservers(sigs)
	return sigs
}

// findObservers marks package functions whose bodies observe a signal,
// by fixpoint so helpers calling helpers resolve.
func (c *collector) findObservers(sigs *signals) {
	direct := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for fn, fd := range c.declOf {
		if c.observesNode(fd.Body, sigs) {
			direct[fn] = true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := framework.CalleeFunc(c.pass.TypesInfo, call); callee != nil {
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
	}
	sigs.observers = direct
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if sigs.observers[fn] {
				continue
			}
			for _, callee := range cs {
				if sigs.observers[callee] {
					sigs.observers[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// fieldOn matches expr as a selector x.f where x's named type is key;
// returns the field name.
func (c *collector) fieldOn(e ast.Expr, key string) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	if framework.TypeKey(framework.Named(s.Recv())) != key {
		return "", false
	}
	return s.Obj().Name(), true
}

// checkOwner examines every go statement in the owner's methods and
// constructors.
func (c *collector) checkOwner(ownerKey string, sigs *signals) {
	bodies := append([]*ast.FuncDecl(nil), c.methodsOf[ownerKey]...)
	bodies = append(bodies, c.ctorsOf[ownerKey]...)
	for _, fd := range bodies {
		closed := c.localCloses(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := c.goroutineBody(g.Call)
			if body == nil {
				return true
			}
			if loop, leaky := c.leakyLoop(body, sigs, closed); leaky {
				shortOwner := ownerKey[strings.LastIndexByte(ownerKey, '/')+1:]
				c.pass.Reportf(g.Pos(),
					"goroutine spawned here cannot be joined: its loop (at %s) never observes a stop signal that %s.%s triggers; select on the done channel or context",
					c.pass.Fset.Position(loop), shortOwner, sigs.quiesce)
			}
			return true
		})
	}
}

// goroutineBody resolves the spawned call to a body we can analyze.
func (c *collector) goroutineBody(call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := framework.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		if fd := c.declOf[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// localCloses collects the objects of channel variables the spawning
// function itself closes: `ch := make(chan T); go func() { for v :=
// range ch {...} }(); ...; close(ch)` is the bounded worker-pool
// idiom, joined by the spawner rather than by Stop.
func (c *collector) localCloses(body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[arg]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// leakyLoop builds the CFG and reports the position of a daemon cycle
// with no observation. closed holds channel objects the spawning
// function closes itself; ranging over one of those is a join, not a
// leak.
func (c *collector) leakyLoop(body *ast.BlockStmt, sigs *signals, closed map[types.Object]bool) (token.Pos, bool) {
	g := framework.NewCFG(body)
	for _, scc := range sccs(g) {
		if len(scc) == 1 && !hasSelfEdge(scc[0]) {
			continue
		}
		daemonAt := token.NoPos
		observed := false
		inSCC := make(map[*framework.Block]bool, len(scc))
		for _, b := range scc {
			inSCC[b] = true
		}
		for _, b := range scc {
			switch {
			case b.Kind == "for.head" && b.Branch == nil:
				if daemonAt == token.NoPos {
					daemonAt = blockPos(b, g)
				}
			case b.Kind == "range.head":
				rs, _ := b.Nodes[0].(*ast.RangeStmt)
				if rs == nil {
					continue
				}
				if !c.isChanExpr(rs.X) {
					continue // bounded: slice/map/int range
				}
				if c.observesNode(rs.X, sigs) || c.rangesClosed(rs.X, sigs) {
					observed = true
					continue
				}
				if id, ok := ast.Unparen(rs.X).(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Uses[id]; obj != nil && closed[obj] {
						observed = true // spawner-closed worker channel
						continue
					}
				}
				if daemonAt == token.NoPos {
					daemonAt = rs.Pos()
				}
			}
			// Observations inside the cycle or on its exit edges (a
			// select case that returns leaves the SCC but is still the
			// loop's way out).
			if c.blockObserves(b, sigs) {
				observed = true
			}
			for _, s := range b.Succs {
				if !inSCC[s] && c.blockObserves(s, sigs) {
					observed = true
				}
			}
		}
		if daemonAt != token.NoPos && !observed {
			return daemonAt, true
		}
	}
	return token.NoPos, false
}

func (c *collector) blockObserves(b *framework.Block, sigs *signals) bool {
	for _, n := range b.Nodes {
		if c.observesNode(n, sigs) {
			return true
		}
	}
	return false
}

// observesNode reports whether n contains a stop-signal observation:
// a receive from a signal channel field, <-ctx.Done() when the type
// cancels a context, a range over a closed channel field, or a call to
// an observer helper.
func (c *collector) observesNode(n ast.Node, sigs *signals) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		switch nn := nn.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if nn.Op != token.ARROW {
				return true
			}
			if name, ok := c.fieldOn(nn.X, sigs.owner); ok &&
				(sigs.fields[name] || sigs.closedAnywhere[name]) {
				found = true
				return false
			}
			if sigs.ctx && c.isCtxDone(nn.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if name, ok := c.fieldOn(nn.X, sigs.owner); ok &&
				(sigs.fields[name] || sigs.closedAnywhere[name]) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := framework.CalleeFunc(c.pass.TypesInfo, nn); fn != nil && sigs.observers[fn] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isCtxDone matches <-x.Done() where x is a context.Context.
func (c *collector) isCtxDone(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	n := framework.Named(c.pass.TypesInfo.TypeOf(sel.X))
	return n != nil && framework.TypeKey(n) == "context.Context"
}

func (c *collector) isChanExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// rangesClosed reports whether the ranged channel field is closed
// anywhere in the package.
func (c *collector) rangesClosed(e ast.Expr, sigs *signals) bool {
	name, ok := c.fieldOn(e, sigs.owner)
	return ok && (sigs.closedAnywhere[name] || sigs.fields[name])
}

func blockPos(b *framework.Block, g *framework.CFG) token.Pos {
	for _, n := range b.Nodes {
		if n.Pos() != token.NoPos {
			return n.Pos()
		}
	}
	// A bare `for {}` head has no nodes; use the body's first node.
	for _, s := range b.Succs {
		for _, n := range s.Nodes {
			if n.Pos() != token.NoPos {
				return n.Pos()
			}
		}
	}
	return token.NoPos
}

func hasSelfEdge(b *framework.Block) bool {
	for _, s := range b.Succs {
		if s == b {
			return true
		}
	}
	return false
}

// sccs computes strongly connected components (Tarjan, iterative enough
// for our graph sizes via recursion).
func sccs(g *framework.CFG) [][]*framework.Block {
	index := make(map[*framework.Block]int)
	low := make(map[*framework.Block]int)
	onStack := make(map[*framework.Block]bool)
	var stack []*framework.Block
	var out [][]*framework.Block
	next := 0

	var strong func(b *framework.Block)
	strong = func(b *framework.Block) {
		index[b] = next
		low[b] = next
		next++
		stack = append(stack, b)
		onStack[b] = true
		for _, s := range b.Succs {
			if _, seen := index[s]; !seen {
				strong(s)
				if low[s] < low[b] {
					low[b] = low[s]
				}
			} else if onStack[s] && index[s] < low[b] {
				low[b] = index[s]
			}
		}
		if low[b] == index[b] {
			var comp []*framework.Block
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == b {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, b := range g.Blocks {
		if _, seen := index[b]; !seen {
			strong(b)
		}
	}
	return out
}
