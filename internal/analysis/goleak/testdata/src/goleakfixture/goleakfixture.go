// Package goleakfixture exercises the goleak analyzer: goroutines
// spawned by long-lived types must observe a stop signal the quiesce
// method triggers.
package goleakfixture

import (
	"context"
	"sync"
)

// Pump closes done from Stop; loops must select on it.
type Pump struct {
	done chan struct{}
	ch   chan int
	jobs chan int
	wg   sync.WaitGroup
}

func (p *Pump) Stop() {
	close(p.done)
	p.wg.Wait()
}

// StartGood observes the done channel: joinable.
func (p *Pump) StartGood() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case v := <-p.ch:
				_ = v
			}
		}
	}()
}

// StartBad loops on the data channel only; Stop can never reach it.
func (p *Pump) StartBad() {
	go func() { // want `goroutine spawned here cannot be joined: its loop \(at .*\) never observes a stop signal that goleakfixture\.Pump\.Stop triggers`
		for {
			v := <-p.ch
			_ = v
		}
	}()
}

// StartMethod spawns a named method whose loop observes: joinable.
func (p *Pump) StartMethod() {
	go p.loop()
}

func (p *Pump) loop() {
	for {
		select {
		case <-p.done:
			return
		case v := <-p.ch:
			_ = v
		}
	}
}

// StartMethodBad spawns a named method that never observes.
func (p *Pump) StartMethodBad() {
	go p.spin() // want `goroutine spawned here cannot be joined: its loop \(at .*\) never observes a stop signal that goleakfixture\.Pump\.Stop triggers`
}

func (p *Pump) spin() {
	for {
		v := <-p.ch
		_ = v
	}
}

// StartHelper observes through a same-package helper: joinable.
func (p *Pump) StartHelper() {
	go func() {
		for {
			if p.waitTick() {
				return
			}
		}
	}()
}

func (p *Pump) waitTick() bool {
	select {
	case <-p.done:
		return true
	case v := <-p.ch:
		_ = v
		return false
	}
}

// StartBounded runs a self-terminating loop: exempt.
func (p *Pump) StartBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			p.ch <- i
		}
	}()
}

// StartPool drains a local channel the spawner itself closes — the
// bounded worker-pool idiom, joined here rather than by Stop.
func (p *Pump) StartPool(items []int) {
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range ch {
				_ = v
			}
		}()
	}
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
}

// StartRangeJobs ranges over a channel nobody closes: unjoinable.
func (p *Pump) StartRangeJobs() {
	go func() { // want `goroutine spawned here cannot be joined: its loop \(at .*\) never observes a stop signal that goleakfixture\.Pump\.Stop triggers`
		for v := range p.jobs {
			_ = v
		}
	}()
}

// Ranger's Stop closes the channel its goroutine ranges over.
type Ranger struct {
	ch chan int
}

func (r *Ranger) Stop() { close(r.ch) }

func (r *Ranger) Start() {
	go func() {
		for v := range r.ch {
			_ = v
		}
	}()
}

// Ctx cancels a context from Stop; loops on <-ctx.Done() are joinable.
type Ctx struct {
	ctx    context.Context
	cancel context.CancelFunc
	ch     chan int
}

func NewCtx() *Ctx {
	c := &Ctx{ch: make(chan int)}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	go func() {
		for {
			select {
			case <-c.ctx.Done():
				return
			case v := <-c.ch:
				_ = v
			}
		}
	}()
	return c
}

func (c *Ctx) Stop() { c.cancel() }

// CtxBad cancels but its goroutine never watches the context.
type CtxBad struct {
	cancel context.CancelFunc
	ch     chan int
}

func (c *CtxBad) Start() {
	go func() { // want `goroutine spawned here cannot be joined: its loop \(at .*\) never observes a stop signal that goleakfixture\.CtxBad\.Stop triggers`
		for {
			v := <-c.ch
			_ = v
		}
	}()
}

func (c *CtxBad) Stop() { c.cancel() }

// Quiet's Stop triggers nothing observable; goleak stays silent and
// leaves the lifecycle question to the pairing analyzer.
type Quiet struct{ n int }

func (q *Quiet) Stop() { q.n = 0 }

func (q *Quiet) Start() {
	go func() {
		for {
			q.n++
		}
	}()
}
