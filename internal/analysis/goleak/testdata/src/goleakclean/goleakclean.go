// Package goleakclean is the goleak negative fixture: every spawned
// loop observes a stop signal.
package goleakclean

import "sync"

type Worker struct {
	done chan struct{}
	in   chan []byte
	out  chan []byte
	wg   sync.WaitGroup
}

func NewWorker() *Worker {
	w := &Worker{
		done: make(chan struct{}),
		in:   make(chan []byte),
		out:  make(chan []byte),
	}
	w.wg.Add(2)
	go w.pump()
	go func() {
		defer w.wg.Done()
		for {
			select {
			case <-w.done:
				return
			case b := <-w.in:
				w.out <- b
			}
		}
	}()
	return w
}

func (w *Worker) pump() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case b := <-w.in:
			_ = b
		}
	}
}

func (w *Worker) Stop() {
	close(w.done)
	w.wg.Wait()
}

// Batch runs bounded work only; no observation needed.
type Batch struct {
	done chan struct{}
}

func (b *Batch) Stop() { close(b.done) }

func (b *Batch) Run(items []int) {
	go func() {
		for _, it := range items {
			_ = it
		}
	}()
}
