package goleak

import (
	"testing"

	"hfetch/internal/analysis/analysistest"
)

func TestGoleakFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/goleakfixture", Analyzer)
}

func TestGoleakClean(t *testing.T) {
	analysistest.NoFindings(t, "./testdata/src/goleakclean", Analyzer)
}
