module hfetch

go 1.22
