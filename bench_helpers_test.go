package hfetch_test

import (
	"time"

	"hfetch/internal/events"
)

// readEvent builds an enriched read event for benchmarks.
func readEvent(file string, off, ln int64) events.Event {
	return events.Event{Op: events.OpRead, File: file, Offset: off, Length: ln, Time: time.Now()}
}
