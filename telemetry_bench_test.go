package hfetch_test

import (
	"sync/atomic"
	"testing"
	"time"

	"hfetch"
	"hfetch/internal/telemetry"
)

// benchCluster boots a single free-device node and returns an open file
// spanning many segments, so ReadAt cost is dominated by the prefetcher
// code path rather than modeled device time.
func benchCluster(b *testing.B, enableTelemetry, enableLifecycle bool) *hfetch.File {
	b.Helper()
	cfg := hfetch.DefaultConfig()
	cfg.SegmentSize = 4096
	cfg.EngineUpdateThreshold = hfetch.ReactivenessHigh
	for i := range cfg.Tiers {
		cfg.Tiers[i].Latency = 0
		cfg.Tiers[i].Bandwidth = 0
	}
	cfg.PFS = hfetch.PFSSpec{}
	cfg.EnableTelemetry = enableTelemetry
	cfg.EnableLifecycle = enableLifecycle
	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Stop)
	const segs = 256
	if err := cluster.CreateFile("bench/t", segs*4096); err != nil {
		b.Fatal(err)
	}
	f, err := cluster.Node(0).NewClient().Open("bench/t")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// BenchmarkTelemetryOverhead compares the client read path with the
// metric registry attached against the nil-registry build, and with the
// lifecycle tracer on top. The contract the telemetry package makes —
// disabled instrumentation is a pointer check, enabled instrumentation
// is a handful of atomics, lifecycle hooks gate on atomics before any
// lock — means all three sub-benchmarks should land within a few
// percent of each other.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, bench := range []struct {
		name      string
		enabled   bool
		lifecycle bool
	}{
		{"disabled", false, false},
		{"enabled", true, false},
		{"lifecycle", true, true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			f := benchCluster(b, bench.enabled, bench.lifecycle)
			buf := make([]byte, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(i%256) * 4096
				if _, err := f.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The stall watchdog samples probes from its own goroutine; the read
	// path never touches it, so a running watchdog must cost the read
	// loop nothing beyond scheduler noise.
	b.Run("lifecycle+watchdog", func(b *testing.B) {
		f := benchCluster(b, true, true)
		var reads atomic.Int64
		wd := telemetry.NewWatchdog(telemetry.WatchdogConfig{
			Stall:    time.Second,
			Interval: 10 * time.Millisecond,
		})
		wd.AddProbe(telemetry.WatchdogProbe{
			Name:     "bench-reads",
			Pending:  func() int64 { return 1 },
			Progress: reads.Load,
		})
		wd.Start()
		b.Cleanup(wd.Stop)
		buf := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(i%256) * 4096
			if _, err := f.ReadAt(buf, off); err != nil {
				b.Fatal(err)
			}
			reads.Add(1)
		}
	})
}
