package hfetch

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hfetch/internal/harness/leakcheck"
	"hfetch/internal/telemetry"
)

// fabricConfig returns a fast-device ClusterFabric config with only
// node-local tiers, so every cross-node segment must travel the
// cluster fetch path (a shared tier would serve it locally).
func fabricConfig(nodes int) Config {
	cfg := fastConfig(nodes)
	cfg.ClusterFabric = true
	cfg.ClusterHeartbeat = 20 * time.Millisecond
	cfg.Tiers = []TierSpec{
		{Name: "ram", Capacity: 8 << 20},
		{Name: "nvme", Capacity: 24 << 20},
	}
	cfg.EnableTelemetry = true
	return cfg
}

// TestFabricServesLocalMissFromPeerTier proves the tentpole data path:
// a local miss whose mapping points at a peer is served from the peer's
// tier (over comm), not from the PFS.
func TestFabricServesLocalMissFromPeerTier(t *testing.T) {
	defer leakcheck.Guard(t)()
	cluster, err := NewCluster(fabricConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const fsize = 16 * 4096
	cluster.CreateFile("f", fsize)

	// Every fabric member starts alive (static pre-seed).
	for i := 0; i < 3; i++ {
		if !cluster.ClusterNode(i).Membership().WaitView(3, 3*time.Second) {
			t.Fatalf("node%d view = %v, want 3 members", i, cluster.ClusterNode(i).Membership().View())
		}
	}

	// Node 0's client warms node 0's tiers.
	c0 := cluster.Node(0).NewClient()
	f0, _ := c0.Open("f")
	buf := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		f0.ReadAt(buf, off)
		f0.ReadAt(buf, off) // re-access so scores clear the placement bar
	}
	cluster.Node(0).Flush()

	// Node 1's client reads the same file: mappings point at node 0, so
	// hits must be served through the cluster fetcher.
	c1 := cluster.Node(1).NewClient()
	f1, _ := c1.Open("f")
	got := make([]byte, 4096)
	want := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		f1.ReadAt(got, off)
		cluster.FS().ReadAt("f", off, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("cross-node read corrupted data at offset %d", off)
		}
	}
	if c1.Stats().Hits() == 0 {
		t.Fatalf("no cross-node hits: %s", c1.Stats())
	}
	reads, _ := cluster.Node(1).Server().RemoteStats()
	_, serves := cluster.Node(0).Server().RemoteStats()
	if reads == 0 || serves == 0 {
		t.Fatalf("peer fetch path unused: reads=%d serves=%d", reads, serves)
	}
	if p99 := cluster.ClusterNode(1).Fetcher().PeerP99("node0"); p99 <= 0 {
		t.Fatalf("per-peer fetch p99 not recorded: %d", p99)
	}
	f0.Close()
	f1.Close()
}

// TestFabricTCPSmoke boots the 3-node fabric over real loopback TCP —
// the transport cmd/hfetchd deploys, with true gob serialization and
// socket teardown — runs reads through it, kills one node mid-run, and
// asserts the survivors converge and every read keeps succeeding. The
// CI cluster-smoke job drives this test.
func TestFabricTCPSmoke(t *testing.T) {
	defer leakcheck.Guard(t)()
	cfg := fabricConfig(3)
	cfg.ClusterTransport = "tcp"
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const fsize = 16 * 4096
	cluster.CreateFile("f", fsize)
	for i := 0; i < 3; i++ {
		if !cluster.ClusterNode(i).Membership().WaitView(3, 5*time.Second) {
			t.Fatalf("node%d view = %v, want 3 members over TCP", i, cluster.ClusterNode(i).Membership().View())
		}
	}

	c0 := cluster.Node(0).NewClient()
	f0, _ := c0.Open("f")
	buf := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		f0.ReadAt(buf, off)
		f0.ReadAt(buf, off)
	}
	cluster.Node(0).Flush()
	f0.Close()

	// Cross-node reads must travel the TCP peer path.
	c1 := cluster.Node(1).NewClient()
	f1, _ := c1.Open("f")
	for off := int64(0); off < fsize; off += 4096 {
		if _, err := f1.ReadAt(buf, off); err != nil {
			t.Fatalf("TCP cross-node read: %v", err)
		}
	}
	_, serves := cluster.Node(0).Server().RemoteStats()
	if serves == 0 {
		t.Fatal("no segments served over the TCP peer path")
	}

	// Kill the warm node mid-run: survivors must converge and reads
	// degrade to PFS passthrough without a single failure.
	cluster.KillNode(0)
	for _, i := range []int{1, 2} {
		if !cluster.ClusterNode(i).Membership().WaitView(2, 10*time.Second) {
			t.Fatalf("node%d view = %v, want 2 after TCP kill", i, cluster.ClusterNode(i).Membership().View())
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r1, _ := cluster.ClusterNode(1).RebalanceStats()
		r2, _ := cluster.ClusterNode(2).RebalanceStats()
		if r1 > 0 && r2 > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never rebalanced: n1=%d n2=%d", r1, r2)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := make([]byte, 4096)
	want := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		if n, err := f1.ReadAt(got, off); err != nil || n != 4096 {
			t.Fatalf("read failed after TCP node death: n=%d err=%v", n, err)
		}
		cluster.FS().ReadAt("f", off, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("data corrupted after TCP node death at offset %d", off)
		}
	}
	f1.Close()
}

// TestFabricNodeDeathDegradesToPFS proves the failure half of the
// acceptance gate: killing a node mid-run leaves no failed reads — the
// survivors converge on a smaller view, rebalance the hashmaps, and
// reads that mapped to the dead node's tiers fall back to the PFS with
// intact data.
func TestFabricNodeDeathDegradesToPFS(t *testing.T) {
	defer leakcheck.Guard(t)()
	cluster, err := NewCluster(fabricConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const fsize = 16 * 4096
	cluster.CreateFile("f", fsize)
	for i := 0; i < 3; i++ {
		if !cluster.ClusterNode(i).Membership().WaitView(3, 3*time.Second) {
			t.Fatalf("node%d never saw the full view", i)
		}
	}

	// Warm node 0, then confirm node 1 is being served across the wire.
	c0 := cluster.Node(0).NewClient()
	f0, _ := c0.Open("f")
	buf := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		f0.ReadAt(buf, off)
		f0.ReadAt(buf, off)
	}
	cluster.Node(0).Flush()
	f0.Close()

	c1 := cluster.Node(1).NewClient()
	f1, _ := c1.Open("f")
	for off := int64(0); off < fsize; off += 4096 {
		f1.ReadAt(buf, off)
	}

	// Kill node 0. Survivors must age it to dead and rebalance.
	cluster.KillNode(0)
	for _, i := range []int{1, 2} {
		if !cluster.ClusterNode(i).Membership().WaitView(2, 5*time.Second) {
			t.Fatalf("node%d view = %v, want 2 after kill", i, cluster.ClusterNode(i).Membership().View())
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r1, _ := cluster.ClusterNode(1).RebalanceStats()
		r2, _ := cluster.ClusterNode(2).RebalanceStats()
		if r1 > 0 && r2 > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never rebalanced: n1=%d n2=%d", r1, r2)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every read must still succeed with intact data (PFS passthrough
	// for anything that lived on node 0).
	got := make([]byte, 4096)
	want := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		n, err := f1.ReadAt(got, off)
		if err != nil || n != 4096 {
			t.Fatalf("read failed after node death: n=%d err=%v", n, err)
		}
		cluster.FS().ReadAt("f", off, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("data corrupted after node death at offset %d", off)
		}
	}
	f1.Close()
}

// TestFabricTracePropagation proves the fleet-tracing tentpole: a
// lifecycle trace rooted on the reading node crosses the comm fabric
// with the fetch request, the serving node records its serve span under
// the same trace ID, and the fleet Perfetto export shows the one
// lifecycle spanning both node lanes.
func TestFabricTracePropagation(t *testing.T) {
	defer leakcheck.Guard(t)()
	cfg := fabricConfig(2)
	cfg.EnableLifecycle = true
	cfg.LifecycleSampleEvery = 1 // trace every access: the test needs determinism
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const fsize = 16 * 4096
	cluster.CreateFile("f", fsize)
	for i := 0; i < 2; i++ {
		if !cluster.ClusterNode(i).Membership().WaitView(2, 3*time.Second) {
			t.Fatalf("node%d never saw the full view", i)
		}
	}

	// Warm node 0's tiers, then read from node 1 so segments travel the
	// peer fetch path carrying node 1's trace IDs.
	c0 := cluster.Node(0).NewClient()
	f0, _ := c0.Open("f")
	buf := make([]byte, 4096)
	for off := int64(0); off < fsize; off += 4096 {
		f0.ReadAt(buf, off)
		f0.ReadAt(buf, off)
	}
	cluster.Node(0).Flush()
	f0.Close()

	// The access event (and with it the lifecycle trace) is posted after
	// a read returns, so the first pass roots the traces and the second
	// pass's peer fetches carry them across the fabric.
	c1 := cluster.Node(1).NewClient()
	f1, _ := c1.Open("f")
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < fsize; off += 4096 {
			if _, err := f1.ReadAt(buf, off); err != nil {
				t.Fatalf("cross-node read: %v", err)
			}
		}
	}
	f1.Close()
	reads, _ := cluster.Node(1).Server().RemoteStats()
	if reads == 0 {
		t.Fatal("no cross-node fetches: the trace had nothing to propagate")
	}

	var out bytes.Buffer
	if err := cluster.FleetTrace(&out); err != nil {
		t.Fatal(err)
	}
	if errs := telemetry.ValidateTraceJSON(out.Bytes()); len(errs) != 0 {
		t.Fatalf("fleet trace fails validation: %v", errs)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  uint64 `json:"tid"`
		} `json:"traceEvents"`
		OtherData struct {
			Nodes []string `json:"nodes"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.OtherData.Nodes) != 2 {
		t.Fatalf("fleet export lanes = %v, want 2 nodes", doc.OtherData.Nodes)
	}

	// Index: per trace ID, which pids carry its spans and which stages
	// appeared where.
	pidsByTID := map[uint64]map[int]bool{}
	stagesByTID := map[uint64]map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if pidsByTID[e.Tid] == nil {
			pidsByTID[e.Tid] = map[int]bool{}
			stagesByTID[e.Tid] = map[string]bool{}
		}
		pidsByTID[e.Tid][e.Pid] = true
		stagesByTID[e.Tid][e.Name] = true
	}
	var crossNode int
	for tid, pids := range pidsByTID {
		if len(pids) >= 2 && stagesByTID[tid][telemetry.StageEvent] && stagesByTID[tid][telemetry.StagePeerFetchServe] {
			crossNode++
		}
	}
	if crossNode == 0 {
		t.Fatalf("no trace ID spans two node lanes with event + peer_fetch_serve stages (traces: %d)", len(pidsByTID))
	}
}
