package hfetch

// Whole-system integration tests through the public API: mixed
// concurrent workloads with data verification, consistency across
// writes, heatmap persistence across cluster restarts, and a quick
// end-to-end shape check of the headline experiment.

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hfetch/internal/harness/leakcheck"
)

func TestRandomizedConcurrentWorkload(t *testing.T) {
	defer leakcheck.Guard(t)()
	cfg := fastConfig(1)
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const files = 4
	const fileSize = 32 * 4096
	for i := 0; i < files; i++ {
		cluster.CreateFile(fmt.Sprintf("rnd/f%d", i), fileSize)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			c := cluster.Node(0).NewClient()
			for op := 0; op < 150; op++ {
				name := fmt.Sprintf("rnd/f%d", rng.Intn(files))
				f, err := c.Open(name)
				if err != nil {
					errs <- err
					return
				}
				for r := 0; r < rng.Intn(5)+1; r++ {
					ln := int64(rng.Intn(3*4096) + 1)
					off := int64(rng.Intn(fileSize))
					got := make([]byte, ln)
					n, err := f.ReadAt(got, off)
					if err != nil {
						errs <- err
						f.Close()
						return
					}
					for i := 0; i < n; i++ {
						want, _ := cluster.FS().ExpectedAt(name, off+int64(i))
						if got[i] != want {
							errs <- fmt.Errorf("corruption in %s at %d", name, off+int64(i))
							f.Close()
							return
						}
					}
				}
				f.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, ok := cluster.Node(0).Server().Hierarchy().ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated under randomized workload")
	}
}

func TestWriterReaderConsistency(t *testing.T) {
	defer leakcheck.Guard(t)()
	cluster, _ := NewCluster(fastConfig(1))
	defer cluster.Stop()
	const size = 16 * 4096
	cluster.CreateFile("wr", size)

	c := cluster.Node(0).NewClient()
	f, _ := c.Open("wr")
	defer f.Close()
	buf := make([]byte, 4096)
	for round := 0; round < 5; round++ {
		// Warm the cache fully.
		for off := int64(0); off < size; off += 4096 {
			f.ReadAt(buf, off)
		}
		cluster.Node(0).Flush()
		// Update the file; all prefetched data must be invalidated and
		// subsequent reads must see the new version everywhere.
		if err := f.WriteAt(int64(round)*100, 50); err != nil {
			t.Fatal(err)
		}
		cluster.Node(0).Flush()
		for off := int64(0); off < size; off += 4096 {
			n, err := f.ReadAt(buf, off)
			if err != nil || n != 4096 {
				t.Fatal(n, err)
			}
			for i := 0; i < n; i++ {
				want, _ := cluster.FS().ExpectedAt("wr", off+int64(i))
				if buf[i] != want {
					t.Fatalf("round %d: stale byte at %d after invalidation", round, off+int64(i))
				}
			}
		}
	}
}

func TestHeatmapSurvivesClusterRestart(t *testing.T) {
	defer leakcheck.Guard(t)()
	heatDir := filepath.Join(t.TempDir(), "heat")
	mk := func() *Cluster {
		cfg := fastConfig(1)
		cfg.HeatDir = heatDir
		cfg.SeqBoost = 0.5
		cluster, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cluster.CreateFile("wf/data", 32*4096)
		return cluster
	}

	// First workflow run: read, close (persists the heatmap), shut down.
	c1 := mk()
	client := c1.Node(0).NewClient()
	f, _ := client.Open("wf/data")
	buf := make([]byte, 4096)
	for off := int64(0); off < 32*4096; off += 4096 {
		f.ReadAt(buf, off)
	}
	f.Close()
	c1.Stop()

	// Second run, brand-new cluster: opening the file pre-places hot
	// segments before any read.
	c2 := mk()
	defer c2.Stop()
	client2 := c2.Node(0).NewClient()
	f2, _ := client2.Open("wf/data")
	defer f2.Close()
	c2.Node(0).Flush()
	if c2.Node(0).Server().Hierarchy().TotalUsed() == 0 {
		t.Fatal("no pre-placement from the persisted heatmap")
	}
	f2.ReadAt(buf, 0)
	if client2.Stats().Hits() == 0 {
		t.Fatalf("first read of the second run should hit: %s", client2.Stats())
	}
}

func TestOpenCloseStorm(t *testing.T) {
	defer leakcheck.Guard(t)()
	cluster, _ := NewCluster(fastConfig(1))
	defer cluster.Stop()
	cluster.CreateFile("storm", 8*4096)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cluster.Node(0).NewClient()
			buf := make([]byte, 512)
			for i := 0; i < 100; i++ {
				f, err := c.Open("storm")
				if err != nil {
					t.Error(err)
					return
				}
				f.ReadAt(buf, int64(i%8)*4096)
				f.Close()
			}
		}()
	}
	wg.Wait()
	if cluster.Node(0).Server().Registry().Watched("storm") {
		t.Fatal("watch must be gone after all closes")
	}
}

// TestHeadlineShape verifies the paper's headline claim end-to-end at a
// tiny scale: on a shared, re-read workflow, HFetch beats no-prefetching
// by a wide margin (the paper reports >50%).
func TestHeadlineShape(t *testing.T) {
	defer leakcheck.Guard(t)()
	if testing.Short() {
		t.Skip("timing-based")
	}
	run := func(prefetch bool) time.Duration {
		cfg := DefaultConfig()
		cfg.SegmentSize = 64 << 10
		cfg.EngineUpdateThreshold = 10
		cfg.SeqBoost = 0.5
		if !prefetch {
			// Degenerate hierarchy: nothing can be cached.
			cfg.Tiers = []TierSpec{{Name: "ram", Capacity: 1}}
		} else {
			cfg.Tiers = DefaultTiers(4<<20, 8<<20, 16<<20)
		}
		cluster, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Stop()
		cluster.CreateFile("h", 2<<20)
		start := time.Now()
		var wg sync.WaitGroup
		for p := 0; p < 8; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := cluster.Node(0).NewClient()
				f, _ := c.Open("h")
				defer f.Close()
				buf := make([]byte, 64<<10)
				for pass := 0; pass < 4; pass++ {
					for off := int64(0); off < 2<<20; off += 64 << 10 {
						f.ReadAt(buf, off)
						time.Sleep(time.Millisecond)
					}
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	with := run(true)
	without := run(false)
	if float64(with) > 0.8*float64(without) {
		t.Fatalf("hfetch (%v) should be well under none (%v)", with, without)
	}
}

func TestByteLevelIntegrityAcrossDemotions(t *testing.T) {
	defer leakcheck.Guard(t)()
	// Tiny RAM forces constant demotion churn between tiers; every byte
	// must still be correct.
	cfg := fastConfig(1)
	cfg.Tiers = []TierSpec{
		{Name: "ram", Capacity: 3 * 4096},
		{Name: "nvme", Capacity: 8 * 4096},
		{Name: "bb", Capacity: 16 * 4096, Shared: true},
	}
	cluster, _ := NewCluster(cfg)
	defer cluster.Stop()
	const size = 64 * 4096
	cluster.CreateFile("churn", size)
	want := make([]byte, size)
	cluster.FS().ReadAt("churn", 0, want)

	c := cluster.Node(0).NewClient()
	f, _ := c.Open("churn")
	defer f.Close()
	rng := rand.New(rand.NewSource(99))
	got := make([]byte, 4096)
	for i := 0; i < 500; i++ {
		off := int64(rng.Intn(size-4096) / 4096 * 4096)
		n, err := f.ReadAt(got, off)
		if err != nil || n != 4096 {
			t.Fatal(n, err)
		}
		if !bytes.Equal(got, want[off:off+4096]) {
			t.Fatalf("iteration %d: corrupted read at %d", i, off)
		}
	}
	if _, ok := cluster.Node(0).Server().Hierarchy().ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated under churn")
	}
}

func TestMLExtensionTrainsOnline(t *testing.T) {
	defer leakcheck.Guard(t)()
	cfg := fastConfig(1)
	cfg.EnableML = true
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if _, _, ok := cluster.MLStats(); !ok {
		t.Fatal("MLStats must report enabled")
	}
	cluster.CreateFile("ml", 16*4096)
	c := cluster.Node(0).NewClient()
	f, _ := c.Open("ml")
	buf := make([]byte, 4096)
	// Segment 0 re-read repeatedly (positives); the tail touched once.
	for i := 0; i < 10; i++ {
		f.ReadAt(buf, 0)
	}
	for off := int64(4096); off < 16*4096; off += 4096 {
		f.ReadAt(buf, off)
	}
	f.Close() // one-shot segments become negatives at epoch end
	pos, neg, _ := cluster.MLStats()
	if pos == 0 || neg == 0 {
		t.Fatalf("learner examples = %d/%d, want both > 0", pos, neg)
	}
	// The warm path still works with blended scores.
	f2, _ := c.Open("ml")
	defer f2.Close()
	cluster.Node(0).Flush()
	f2.ReadAt(buf, 0)
	if c.Stats().Hits() == 0 {
		t.Fatalf("blended scoring must still place hot segments: %s", c.Stats())
	}
}
