package hfetch

import (
	"strings"
	"testing"
)

// TestClusterTelemetry covers the embedded-cluster observability path:
// per-node registries, agent wiring, and the merged cluster snapshot.
func TestClusterTelemetry(t *testing.T) {
	cfg := fastConfig(2)
	cfg.EnableTelemetry = true
	cfg.SpanSampleEvery = 1
	cfg.TimeSampleEvery = 1
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.CreateFile("data/t", 64*4096); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cluster.Nodes(); i++ {
		if cluster.Node(i).Telemetry() == nil {
			t.Fatalf("node %d has no registry despite EnableTelemetry", i)
		}
		client := cluster.Node(i).NewClient()
		f, err := client.Open("data/t")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		if _, err := f.ReadAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	snap, ok := cluster.TelemetrySnapshot()
	if !ok {
		t.Fatal("TelemetrySnapshot reported no telemetry")
	}
	var sb strings.Builder
	snap.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"hfetch_events_posted_total",
		`hfetch_tier_read_nanos_count{tier="pfs"}`,
		`hfetch_pipeline_stage_nanos_bucket{stage="client_read"`,
		`hfetch_tier_capacity_bytes{tier="ram"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged snapshot missing %q:\n%s", want, text)
		}
	}
	// Two nodes posted read events; the merge must sum both registries.
	var posted int64
	for _, m := range snap.Metrics {
		if m.Name == "hfetch_events_posted_total" {
			posted += m.Value
		}
	}
	if posted < 2 {
		t.Fatalf("merged events_posted_total = %d, want >= 2", posted)
	}

	if spans := cluster.Node(0).Telemetry().Spans().Recent(); len(spans) == 0 {
		t.Fatal("span log empty despite SpanSampleEvery=1")
	}
}

// TestClusterTelemetryDisabled pins the default-off contract.
func TestClusterTelemetryDisabled(t *testing.T) {
	cluster, err := NewCluster(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if cluster.Node(0).Telemetry() != nil {
		t.Fatal("telemetry registry allocated without EnableTelemetry")
	}
	if _, ok := cluster.TelemetrySnapshot(); ok {
		t.Fatal("TelemetrySnapshot must report ok=false when disabled")
	}
}
