// Quickstart: boot a single-node HFetch cluster, read a file cold (from
// the PFS), let the server-push engine place the touched segments in the
// hierarchy, and read it again warm (from RAM).
package main

import (
	"fmt"
	"log"
	"time"

	"hfetch"
)

func main() {
	cfg := hfetch.DefaultConfig()
	cfg.SegmentSize = 1 << 20
	cfg.EngineUpdateThreshold = hfetch.ReactivenessHigh

	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	const fileSize = 16 << 20
	if err := cluster.CreateFile("data/quickstart", fileSize); err != nil {
		log.Fatal(err)
	}

	client := cluster.Node(0).NewClient()
	f, err := client.Open("data/quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 1<<20)

	// Cold pass: every read goes to the parallel file system.
	start := time.Now()
	for off := int64(0); off < fileSize; off += int64(len(buf)) {
		if _, err := f.ReadAt(buf, off); err != nil {
			log.Fatal(err)
		}
	}
	cold := time.Since(start)

	// Give the placement engine a beat, then read again: the same bytes
	// now come from the prefetching hierarchy.
	cluster.Node(0).Flush()
	start = time.Now()
	for off := int64(0); off < fileSize; off += int64(len(buf)) {
		if _, err := f.ReadAt(buf, off); err != nil {
			log.Fatal(err)
		}
	}
	warm := time.Since(start)

	fmt.Printf("cold pass: %8v (all PFS)\n", cold.Round(time.Millisecond))
	fmt.Printf("warm pass: %8v (%s)\n", warm.Round(time.Millisecond), client.Stats())
	fmt.Printf("speedup:   %.1fx\n", float64(cold)/float64(warm))
}
