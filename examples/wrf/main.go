// WRF: runs the emulated Weather Research and Forecasting workflow (the
// paper's Figure 6b workload): pre-processing, an iterative main model
// that re-reads its domain data every simulated time step, and a
// post-processing/visualization pass. Compares HFetch against the
// online (Stacker-like) comparator and no prefetching.
package main

import (
	"fmt"
	"log"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/harness"
	"hfetch/internal/workloads"
)

func main() {
	cfg := workloads.WRFConfig{
		Procs:      16,
		TotalBytes: 16 << 20,
		Req:        64 << 10,
		Steps:      4,
		Think:      10 * time.Millisecond,
		Domains:    4,
	}
	apps := workloads.WRF(cfg)
	phases := make([][]workloads.App, len(apps))
	for i, a := range apps {
		phases[i] = []workloads.App{a}
	}
	fmt.Printf("WRF: %d processes over %d MiB in %d domains, %d model steps\n",
		cfg.Procs, cfg.TotalBytes>>20, cfg.Domains, cfg.Steps)

	systems := []string{"hfetch", "stacker", "none"}
	for _, mode := range systems {
		env := harness.NewEnv(harness.OriginBB, 1)
		if err := env.CreateFiles(workloads.WRFFiles(cfg)); err != nil {
			log.Fatal(err)
		}
		var sys baselines.System
		var err error
		switch mode {
		case "hfetch":
			sys, err = env.NewHFetch(harness.HFetchOpts{
				SegmentSize: cfg.Req,
				Tiers: []harness.TierDef{
					{Name: "ram", Capacity: cfg.TotalBytes / 8},
					{Name: "nvme", Capacity: cfg.TotalBytes / 4},
				},
				UpdateThreshold: 10,
				Interval:        50 * time.Millisecond,
				EngineWorkers:   8,
				SeqBoost:        0.5,
				DecayUnit:       time.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
		case "stacker":
			sys = baselines.NewStacker(env.FS, baselines.StackerConfig{
				CacheBytes: cfg.TotalBytes / 8, CacheDevice: env.RAMDevice(),
				SegmentSize: cfg.Req, Depth: 2, Workers: 4,
			})
		default:
			sys = baselines.NewNone(env.FS)
		}
		res, err := harness.RunPhases(sys, phases)
		if err != nil {
			log.Fatal(err)
		}
		sys.Stop()
		fmt.Printf("  %-8s %8v  hit=%5.1f%%\n",
			mode, res.Elapsed.Round(time.Millisecond), res.HitRatio*100)
	}
}
