// Pipeline: the scenario HFetch is designed for — a scientific workflow
// where a producer writes a dataset once (WORM) and a series of consumer
// applications read it many times. The producer's epoch ends, a
// simulation-analysis stage reads the data (cold), and a visualization
// stage reads it again: by then the global heatmap has placed everything
// in fast tiers, so the last stage is served almost entirely from the
// hierarchy even though it never touched the file before — prefetching
// is data-centric, not application-centric.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hfetch"
)

const (
	fileSize = 8 << 20
	req      = 512 << 10
	procs    = 4
)

func main() {
	cfg := hfetch.DefaultConfig()
	cfg.SegmentSize = req
	cfg.EngineUpdateThreshold = 10
	cfg.SeqBoost = 0.5

	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	node := cluster.Node(0)

	// Stage 0 — producer: the simulation writes its output to the PFS.
	if err := cluster.CreateFile("pipeline/output", fileSize); err != nil {
		log.Fatal(err)
	}
	fmt.Println("producer:   wrote pipeline/output (8 MiB) to the PFS")

	// Stage 1 — analysis: several ranks scan the dataset.
	runStage(node, "analysis  ")

	// Stage 2 — visualization: a different application, same data. It
	// benefits from the heatmap stage 1 built even though it shares no
	// code or hints with it.
	node.Flush()
	runStage(node, "visualizer")
}

func runStage(node *hfetch.Node, name string) {
	stats := newSharedStats(node)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client := stats.client
			f, err := client.Open("pipeline/output")
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, req)
			// Each rank reads the whole dataset (collective analysis).
			for off := int64(0); off < fileSize; off += req {
				if _, err := f.ReadAt(buf, off); err != nil {
					log.Fatal(err)
				}
				time.Sleep(2 * time.Millisecond) // compute on the block
			}
		}(p)
	}
	wg.Wait()
	fmt.Printf("%s: %7v  %s\n", name, time.Since(start).Round(time.Millisecond), stats.client.Stats())
}

type sharedStats struct{ client *hfetch.Client }

func newSharedStats(node *hfetch.Node) *sharedStats {
	return &sharedStats{client: node.NewClient()}
}
