// Montage: runs the emulated Montage astronomical mosaic workflow (the
// paper's Figure 6a workload) against HFetch and the no-prefetching
// baseline, printing end-to-end time and hit ratio for both. The
// workflow's four phases (projection, re-projection, diff/fit,
// background correction) run as a pipeline; data is staged in the burst
// buffers.
package main

import (
	"fmt"
	"log"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/harness"
	"hfetch/internal/workloads"
)

func main() {
	cfg := workloads.MontageConfig{
		Procs:      16,
		ImageBytes: 1 << 20,
		Images:     8,
		Req:        64 << 10,
		Steps:      8,
		Think:      5 * time.Millisecond,
	}
	apps := workloads.Montage(cfg)
	phases := make([][]workloads.App, len(apps))
	for i, a := range apps {
		phases[i] = []workloads.App{a}
	}
	fmt.Printf("Montage: %d processes, %d images x %d MiB, %d phase-steps\n",
		cfg.Procs, cfg.Images, cfg.ImageBytes>>20, cfg.Steps)

	for _, mode := range []string{"hfetch", "none"} {
		env := harness.NewEnv(harness.OriginBB, 1)
		if err := env.CreateFiles(workloads.MontageFiles(cfg)); err != nil {
			log.Fatal(err)
		}
		var sys baselines.System
		if mode == "hfetch" {
			var err error
			sys, err = env.NewHFetch(harness.HFetchOpts{
				SegmentSize: cfg.Req,
				Tiers: []harness.TierDef{
					{Name: "ram", Capacity: 2 << 20},
					{Name: "nvme", Capacity: 3 << 20},
				},
				UpdateThreshold: 10,
				Interval:        50 * time.Millisecond,
				EngineWorkers:   8,
				SeqBoost:        0.5,
				DecayUnit:       time.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
		} else {
			sys = baselines.NewNone(env.FS)
		}
		res, err := harness.RunPhases(sys, phases)
		if err != nil {
			log.Fatal(err)
		}
		sys.Stop()
		fmt.Printf("  %-8s %8v  hit=%5.1f%%  (%d hits, %d misses)\n",
			mode, res.Elapsed.Round(time.Millisecond), res.HitRatio*100, res.Hits, res.Misses)
	}
}
