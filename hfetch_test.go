package hfetch

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// fastConfig returns a free-device config so API tests run instantly.
func fastConfig(nodes int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.SegmentSize = 4096
	cfg.EngineUpdateThreshold = ReactivenessHigh
	for i := range cfg.Tiers {
		cfg.Tiers[i].Latency = 0
		cfg.Tiers[i].Bandwidth = 0
	}
	cfg.PFS = PFSSpec{}
	return cfg
}

func TestQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.CreateFile("data/x", 64*4096); err != nil {
		t.Fatal(err)
	}
	client := cluster.Node(0).NewClient()
	f, err := client.Open("data/x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	cluster.Node(0).Flush()
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if client.Stats().Hits() == 0 {
		t.Fatalf("warm read must hit: %s", client.Stats())
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 1 || len(cfg.Tiers) != 3 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if cfg.Tiers[0].Name != "ram" || !cfg.Tiers[2].Shared {
		t.Fatal("tier defaults wrong")
	}
}

func TestMultiNodeSharedView(t *testing.T) {
	cluster, err := NewCluster(fastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.CreateFile("f", 16*4096)

	// Node 0's client warms the shared burst buffer / statistics.
	c0 := cluster.Node(0).NewClient()
	f0, _ := c0.Open("f")
	buf := make([]byte, 4096)
	for off := int64(0); off < 16*4096; off += 4096 {
		f0.ReadAt(buf, off)
	}
	cluster.Node(0).Flush()

	// Node 1's client sees the same global segment mappings: segments
	// resident in node 0's tiers are served through the node-to-node
	// communicator, so they are hits, not PFS reads.
	c1 := cluster.Node(1).NewClient()
	f1, _ := c1.Open("f")
	got := make([]byte, 4096)
	want := make([]byte, 4096)
	for off := int64(0); off < 16*4096; off += 4096 {
		f1.ReadAt(got, off)
		cluster.FS().ReadAt("f", off, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("remote read corrupted data at %d", off)
		}
	}
	if c1.Stats().Hits() == 0 {
		t.Fatalf("cross-node hits expected, got %s", c1.Stats())
	}
	reads, _ := cluster.Node(1).Server().RemoteStats()
	_, serves := cluster.Node(0).Server().RemoteStats()
	if reads == 0 || serves == 0 {
		t.Fatalf("node-to-node data path unused: reads=%d serves=%d", reads, serves)
	}
	f0.Close()
	f1.Close()
}

func TestConcurrentClientsSeparateFiles(t *testing.T) {
	cluster, err := NewCluster(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	for i := 0; i < 4; i++ {
		cluster.CreateFile(string(rune('a'+i)), 8*4096)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cluster.Node(0).NewClient()
			f, err := c.Open(string(rune('a' + i)))
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			buf := make([]byte, 4096)
			for pass := 0; pass < 3; pass++ {
				for off := int64(0); off < 8*4096; off += 4096 {
					if _, err := f.ReadAt(buf, off); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if _, ok := cluster.Node(0).Server().Hierarchy().ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated")
	}
}

func TestDataIntegrityThroughPublicAPI(t *testing.T) {
	cluster, _ := NewCluster(fastConfig(1))
	defer cluster.Stop()
	const size = 32 * 4096
	cluster.CreateFile("f", size)
	want := make([]byte, size)
	cluster.FS().ReadAt("f", 0, want)

	c := cluster.Node(0).NewClient()
	f, _ := c.Open("f")
	defer f.Close()
	got := make([]byte, size)
	for pass := 0; pass < 2; pass++ {
		for off := 0; off < size; off += 4096 {
			f.ReadAt(got[off:off+4096], int64(off))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: corrupted data through public API", pass)
		}
		cluster.Node(0).Flush()
	}
}

func TestTimeScaleSpeedsDevices(t *testing.T) {
	cfg := fastConfig(1)
	cfg.PFS = PFSSpec{Latency: 50 * time.Millisecond, Bandwidth: 1e9, Servers: 1}
	cfg.TimeScale = 0.01 // 50ms -> 500µs
	cluster, _ := NewCluster(cfg)
	defer cluster.Stop()
	cluster.CreateFile("f", 4096)
	c := cluster.Node(0).NewClient()
	f, _ := c.Open("f")
	defer f.Close()
	start := time.Now()
	f.ReadAt(make([]byte, 4096), 0)
	if el := time.Since(start); el > 20*time.Millisecond {
		t.Fatalf("scaled PFS read took %v, want ~0.5ms", el)
	}
}
